# Kill-and-restart smoke test for the collector durability layer.
#
# Two pipelines over real processes on 127.0.0.1:
#
#   1. Reference: 4 dcs_agent + 1 dcs_collector (no durability), uninterrupted.
#   2. Crash run: the same 4 agents against a collector *supervisor* — this
#      script re-entered with -DMODE=supervise — which starts a durable
#      collector with --crash-after-deltas (the process SIGKILLs itself mid
#      stream: no flush, no destructors), verifies it died, then restarts it
#      on the same port with the same --state-dir. The agents ride out the
#      outage on their spools and reconnect.
#
# Oracle: the recovered run's final per-site accounting and top-k listing —
# groups *and* frequency estimates — must equal the uninterrupted
# reference's exactly. Sketch linearity makes recovery bit-identical, so
# equality is asserted, not approximated; any double-merged or lost epoch
# shows up as a deltas/updates/top-k mismatch.
#
# Invoked by ctest (see CMakeLists.txt).

set(agent_args --u 6000 --d 80 --epoch-updates 250 --drain-ms 90000)
set(collector_sites --sites 4 --timeout-ms 90000)

if(MODE STREQUAL "supervise")
  # --- phase 1: durable collector, fault injection armed ---------------------
  execute_process(
    COMMAND ${DCS_COLLECTOR} --port-file ${WORK_DIR}/collector.port
            ${collector_sites} --state-dir ${WORK_DIR}/state
            --checkpoint-every 7 --crash-after-deltas 10
    OUTPUT_VARIABLE phase1_out
    ERROR_VARIABLE phase1_err
    RESULT_VARIABLE phase1_result
    TIMEOUT 120)
  if(phase1_result EQUAL 0)
    message(FATAL_ERROR "recovery_smoke: collector was told to crash after "
      "10 deltas but exited cleanly:\n${phase1_out}\n${phase1_err}")
  endif()
  file(WRITE ${WORK_DIR}/phase1.out "${phase1_out}\n${phase1_err}\n")

  if(NOT EXISTS ${WORK_DIR}/state)
    message(FATAL_ERROR "recovery_smoke: no state directory survived the "
      "crash")
  endif()
  file(READ ${WORK_DIR}/collector.port port)
  string(STRIP "${port}" port)

  # --- phase 2: restart on the same port, same state directory ---------------
  execute_process(
    COMMAND ${DCS_COLLECTOR} --port ${port} ${collector_sites}
            --state-dir ${WORK_DIR}/state --checkpoint-every 7
            --metrics-out ${WORK_DIR}/metrics.prom
    OUTPUT_VARIABLE phase2_out
    ERROR_VARIABLE phase2_err
    RESULT_VARIABLE phase2_result
    TIMEOUT 120)
  file(WRITE ${WORK_DIR}/recovered.out "${phase2_out}")
  if(NOT phase2_result EQUAL 0)
    message(FATAL_ERROR "recovery_smoke: restarted collector failed "
      "(${phase2_result}):\n${phase2_out}\n${phase2_err}")
  endif()
  if(NOT phase2_out MATCHES "recovered generation=")
    message(FATAL_ERROR "recovery_smoke: restarted collector did not report "
      "a recovery:\n${phase2_out}")
  endif()
  return()
endif()

# --- main mode ---------------------------------------------------------------
file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

# Reference run: same deterministic workloads (wseed defaults to the site
# id), no durability, no crash.
execute_process(
  COMMAND ${DCS_AGENT} --site 1 --port-file ${WORK_DIR}/ref.port ${agent_args}
  COMMAND ${DCS_AGENT} --site 2 --port-file ${WORK_DIR}/ref.port ${agent_args}
  COMMAND ${DCS_AGENT} --site 3 --port-file ${WORK_DIR}/ref.port ${agent_args}
  COMMAND ${DCS_AGENT} --site 4 --port-file ${WORK_DIR}/ref.port ${agent_args}
  COMMAND ${DCS_COLLECTOR} --port-file ${WORK_DIR}/ref.port ${collector_sites}
  WORKING_DIRECTORY ${WORK_DIR}
  OUTPUT_VARIABLE reference_out
  ERROR_VARIABLE reference_err
  RESULTS_VARIABLE reference_statuses
  TIMEOUT 150)
foreach(status ${reference_statuses})
  if(NOT status EQUAL 0)
    message(FATAL_ERROR "recovery_smoke: reference run failed "
      "(${reference_statuses}):\n${reference_out}\n${reference_err}")
  endif()
endforeach()

# Crash run: agents + supervisor concurrently. The supervisor (listed last)
# owns the collector lifecycle: crash, verify, restart.
execute_process(
  COMMAND ${DCS_AGENT} --site 1 --port-file ${WORK_DIR}/collector.port
          ${agent_args}
  COMMAND ${DCS_AGENT} --site 2 --port-file ${WORK_DIR}/collector.port
          ${agent_args}
  COMMAND ${DCS_AGENT} --site 3 --port-file ${WORK_DIR}/collector.port
          ${agent_args}
  COMMAND ${DCS_AGENT} --site 4 --port-file ${WORK_DIR}/collector.port
          ${agent_args}
  COMMAND ${CMAKE_COMMAND} -DMODE=supervise -DDCS_COLLECTOR=${DCS_COLLECTOR}
          -DWORK_DIR=${WORK_DIR} -P ${CMAKE_CURRENT_LIST_FILE}
  WORKING_DIRECTORY ${WORK_DIR}
  OUTPUT_VARIABLE crash_out
  ERROR_VARIABLE crash_err
  RESULTS_VARIABLE crash_statuses
  TIMEOUT 300)
foreach(status ${crash_statuses})
  if(NOT status EQUAL 0)
    message(FATAL_ERROR "recovery_smoke: crash run failed "
      "(${crash_statuses}):\n${crash_out}\n${crash_err}")
  endif()
endforeach()

file(READ ${WORK_DIR}/recovered.out recovered_out)

# Every epoch from every site must be merged exactly once across the crash:
# 4 sites x 24 epochs, 6000 updates each, nothing dropped. A double merge
# would inflate deltas/epochs/updates; a lost epoch would deflate them.
foreach(needle
    "byes=4 deltas=96 "
    "site=1 epochs=24 updates=6000 dropped=0 last_epoch=24"
    "site=2 epochs=24 updates=6000 dropped=0 last_epoch=24"
    "site=3 epochs=24 updates=6000 dropped=0 last_epoch=24"
    "site=4 epochs=24 updates=6000 dropped=0 last_epoch=24")
  if(NOT recovered_out MATCHES "${needle}")
    message(FATAL_ERROR "recovery_smoke: recovered collector output missing "
      "'${needle}':\n${recovered_out}")
  endif()
endforeach()

# The recovered top-k listing must equal the uninterrupted reference's,
# estimates included.
string(REGEX MATCHALL "[0-9]+  dest=[0-9a-f]+  frequency~[0-9]+"
       reference_topk "${reference_out}")
string(REGEX MATCHALL "[0-9]+  dest=[0-9a-f]+  frequency~[0-9]+"
       recovered_topk "${recovered_out}")
if(reference_topk STREQUAL "")
  message(FATAL_ERROR "recovery_smoke: reference run produced no top-k "
    "lines:\n${reference_out}")
endif()
if(NOT recovered_topk STREQUAL reference_topk)
  message(FATAL_ERROR "recovery_smoke: recovered top-k differs from the "
    "uninterrupted reference.\nreference: ${reference_topk}\n"
    "recovered: ${recovered_topk}")
endif()

# The dedup oracle: re-deliveries after the restart may happen (acks lost in
# the crash) but every one must be *deduped*, and the metric must exist in
# the exported snapshot.
file(READ ${WORK_DIR}/metrics.prom prom_text)
if(NOT prom_text MATCHES "dcs_checkpoint_post_recovery_duplicates_total")
  message(FATAL_ERROR "recovery_smoke: metrics.prom missing the "
    "post-recovery dedup counter:\n${prom_text}")
endif()
if(NOT prom_text MATCHES "dcs_checkpoint_recoveries_total 1")
  message(FATAL_ERROR "recovery_smoke: metrics.prom did not record the "
    "recovery:\n${prom_text}")
endif()

message(STATUS "recovery_smoke: SIGKILL mid-stream, recovered top-k equals "
  "uninterrupted reference")
