// AdmissionController unit tests. All decisions take an explicit
// time_point, so these tests drive a purely synthetic clock — no sleeps,
// no flakiness — and pin down the exact shed/admit boundaries the service
// relies on.
#include "service/admission.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <utility>

namespace dcs::service {
namespace {

using Clock = AdmissionController::Clock;

Clock::time_point t0() { return Clock::time_point{}; }

Clock::time_point after_ms(std::int64_t ms) {
  return t0() + std::chrono::milliseconds(ms);
}

TEST(Admission, DisabledConfigAdmitsEverything) {
  AdmissionController admission{AdmissionConfig{}};
  for (int i = 0; i < 1000; ++i) {
    const auto decision = admission.try_admit(1, 1u << 20, t0());
    EXPECT_TRUE(decision.admitted);
    EXPECT_EQ(decision.retry_after_ms, 0u);
  }
  EXPECT_EQ(admission.inflight_bytes(), 1000ull << 20);
}

TEST(Admission, ByteBudgetShedsAtTheBoundary) {
  AdmissionConfig config;
  config.max_inflight_bytes = 1000;
  AdmissionController admission{config};

  EXPECT_TRUE(admission.try_admit(1, 600, t0()).admitted);
  EXPECT_TRUE(admission.try_admit(2, 400, t0()).admitted);  // exactly full
  EXPECT_EQ(admission.inflight_bytes(), 1000u);

  const auto shed = admission.try_admit(3, 1, t0());
  EXPECT_FALSE(shed.admitted);
  // Budget sheds cannot predict drain time: the hint is the ceiling.
  EXPECT_EQ(shed.retry_after_ms, config.max_retry_after_ms);

  admission.release(400);
  EXPECT_EQ(admission.inflight_bytes(), 600u);
  EXPECT_TRUE(admission.try_admit(3, 400, t0()).admitted);
}

TEST(Admission, ReleaseNeverUnderflows) {
  AdmissionConfig config;
  config.max_inflight_bytes = 100;
  AdmissionController admission{config};
  admission.release(50);  // spurious release: clamp, don't wrap
  EXPECT_EQ(admission.inflight_bytes(), 0u);
  EXPECT_TRUE(admission.try_admit(1, 100, t0()).admitted);
}

TEST(Admission, TokenBucketAllowsBurstThenSheds) {
  AdmissionConfig config;
  config.site_rate_per_sec = 10.0;
  config.site_burst = 3.0;
  AdmissionController admission{config};

  for (int i = 0; i < 3; ++i)
    EXPECT_TRUE(admission.try_admit(7, 100, t0()).admitted) << i;
  const auto shed = admission.try_admit(7, 100, t0());
  EXPECT_FALSE(shed.admitted);
  // Empty bucket at 10/s refills one whole token in 100 ms.
  EXPECT_GE(shed.retry_after_ms, config.min_retry_after_ms);
  EXPECT_LE(shed.retry_after_ms, 100u);
}

TEST(Admission, TokenBucketRefillsOverTime) {
  AdmissionConfig config;
  config.site_rate_per_sec = 10.0;  // one token per 100 ms
  config.site_burst = 1.0;
  AdmissionController admission{config};

  EXPECT_TRUE(admission.try_admit(7, 1, t0()).admitted);
  EXPECT_FALSE(admission.try_admit(7, 1, after_ms(50)).admitted);
  EXPECT_TRUE(admission.try_admit(7, 1, after_ms(200)).admitted);
  // Refill caps at the burst depth: a long quiet spell does not bank more
  // than `site_burst` tokens.
  EXPECT_FALSE(admission.try_admit(7, 1, after_ms(201)).admitted);
  EXPECT_TRUE(admission.try_admit(7, 1, after_ms(10'000)).admitted);
  EXPECT_FALSE(admission.try_admit(7, 1, after_ms(10'001)).admitted);
}

TEST(Admission, SitesHaveIndependentBuckets) {
  AdmissionConfig config;
  config.site_rate_per_sec = 10.0;
  config.site_burst = 1.0;
  AdmissionController admission{config};

  EXPECT_TRUE(admission.try_admit(1, 1, t0()).admitted);
  EXPECT_FALSE(admission.try_admit(1, 1, t0()).admitted);
  // Site 1 exhausting its bucket must not affect site 2.
  EXPECT_TRUE(admission.try_admit(2, 1, t0()).admitted);
}

TEST(Admission, GlobalBudgetTrumpsSiteTokens) {
  AdmissionConfig config;
  config.max_inflight_bytes = 100;
  config.site_rate_per_sec = 1000.0;
  config.site_burst = 1000.0;
  AdmissionController admission{config};

  EXPECT_TRUE(admission.try_admit(1, 100, t0()).admitted);
  // Plenty of tokens left, but the collector as a whole is full — and the
  // shed must NOT consume a token (the site is not at fault).
  EXPECT_FALSE(admission.try_admit(1, 100, t0()).admitted);
  admission.release(100);
  EXPECT_TRUE(admission.try_admit(1, 100, t0()).admitted);
}

TEST(Admission, RetryHintIsClampedToConfiguredRange) {
  AdmissionConfig config;
  config.site_rate_per_sec = 0.001;  // one token per ~17 minutes
  config.site_burst = 1.0;
  config.min_retry_after_ms = 20;
  config.max_retry_after_ms = 500;
  AdmissionController admission{config};

  EXPECT_TRUE(admission.try_admit(1, 1, t0()).admitted);
  const auto shed = admission.try_admit(1, 1, t0());
  EXPECT_FALSE(shed.admitted);
  EXPECT_EQ(shed.retry_after_ms, 500u);  // ceiling, not 17 minutes

  // A fast-refilling bucket computes a sub-ms wait: floored to min.
  AdmissionConfig fast = config;
  fast.site_rate_per_sec = 10'000.0;
  AdmissionController quick{fast};
  EXPECT_TRUE(quick.try_admit(1, 1, t0()).admitted);
  const auto soon = quick.try_admit(1, 1, t0());
  EXPECT_FALSE(soon.admitted);
  EXPECT_EQ(soon.retry_after_ms, 20u);
}

TEST(Admission, BurstClampsUpToOneWhenRateLimited) {
  AdmissionConfig config;
  config.site_rate_per_sec = 10.0;
  config.site_burst = 0.0;  // misconfigured: would never admit anything
  AdmissionController admission{config};
  EXPECT_TRUE(admission.try_admit(1, 1, t0()).admitted);
}

TEST(Admission, ForgetIdleSitesPrunesOnlyStaleBuckets) {
  AdmissionConfig config;
  config.site_rate_per_sec = 10.0;
  config.site_burst = 1.0;
  AdmissionController admission{config};

  EXPECT_TRUE(admission.try_admit(1, 1, t0()).admitted);
  EXPECT_TRUE(admission.try_admit(2, 1, after_ms(5'000)).admitted);
  admission.forget_idle_sites(after_ms(1'000));
  // Site 1's bucket was dropped: it starts fresh with a full burst even
  // though its old bucket was empty. Site 2's (empty) bucket survived.
  EXPECT_TRUE(admission.try_admit(1, 1, after_ms(5'000)).admitted);
  EXPECT_FALSE(admission.try_admit(2, 1, after_ms(5'000)).admitted);
}

TEST(Admission, InflightChargeReleasesOnDestruction) {
  AdmissionConfig config;
  config.max_inflight_bytes = 100;
  AdmissionController admission{config};

  ASSERT_TRUE(admission.try_admit(1, 80, t0()).admitted);
  {
    InflightCharge charge(&admission, 80);
    EXPECT_EQ(admission.inflight_bytes(), 80u);
    EXPECT_FALSE(admission.try_admit(2, 80, t0()).admitted);
  }
  EXPECT_EQ(admission.inflight_bytes(), 0u);
  EXPECT_TRUE(admission.try_admit(2, 80, t0()).admitted);
  admission.release(80);

  // Move transfers ownership exactly once.
  ASSERT_TRUE(admission.try_admit(1, 60, t0()).admitted);
  {
    InflightCharge outer;
    {
      InflightCharge inner(&admission, 60);
      outer = std::move(inner);
    }  // inner destroyed moved-from: no release yet
    EXPECT_EQ(admission.inflight_bytes(), 60u);
  }
  EXPECT_EQ(admission.inflight_bytes(), 0u);
}

TEST(Admission, ConfigValidationNormalizesRetryRange) {
  AdmissionConfig config;
  config.site_rate_per_sec = 1.0;
  config.site_burst = 1.0;
  config.min_retry_after_ms = 300;
  config.max_retry_after_ms = 100;  // inverted: ceiling raised to the floor
  AdmissionController admission{config};
  EXPECT_TRUE(admission.try_admit(1, 1, t0()).admitted);
  const auto shed = admission.try_admit(1, 1, t0());
  EXPECT_FALSE(shed.admitted);
  EXPECT_EQ(shed.retry_after_ms, 300u);
}

}  // namespace
}  // namespace dcs::service
