// Tests for DdosMonitor: the paper's headline behaviour — SYN floods alarm,
// flash crowds do not — plus alert lifecycle and the port-scan role swap.
#include "detection/ddos_monitor.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "net/exporter.hpp"
#include "net/scenarios.hpp"
#include "stream/flow_update.hpp"

namespace dcs {
namespace {

DdosMonitorConfig test_config() {
  DdosMonitorConfig config;
  config.sketch.num_tables = 3;
  config.sketch.buckets_per_table = 128;
  config.sketch.seed = 5;
  config.check_interval = 512;
  config.min_absolute = 400;
  config.alarm_factor = 8.0;
  return config;
}

std::vector<FlowUpdate> updates_for(std::vector<Packet> packets) {
  FlowUpdateExporter exporter;
  return exporter.run(packets);
}

bool raised_for(const std::vector<Alert>& alerts, Addr subject) {
  return std::any_of(alerts.begin(), alerts.end(), [subject](const Alert& a) {
    return a.kind == Alert::Kind::kRaised && a.subject == subject;
  });
}

TEST(Detection, SynFloodRaisesAlertForVictim) {
  Timeline timeline(1);
  BackgroundTrafficConfig background;
  background.sessions = 3000;
  add_background_traffic(timeline, background);
  SynFloodConfig flood;
  flood.spoofed_sources = 10'000;
  add_syn_flood(timeline, flood);

  DdosMonitor monitor(test_config());
  monitor.ingest(updates_for(timeline.finalize()));
  monitor.check_now();

  EXPECT_TRUE(raised_for(monitor.alerts(), flood.victim));
  const auto active = monitor.active_alarms();
  EXPECT_NE(std::find(active.begin(), active.end(), flood.victim), active.end());
}

TEST(Detection, FlashCrowdDoesNotAlarm) {
  Timeline timeline(2);
  BackgroundTrafficConfig background;
  background.sessions = 3000;
  add_background_traffic(timeline, background);
  FlashCrowdConfig crowd;
  crowd.clients = 20'000;  // bigger surge than the flood above
  add_flash_crowd(timeline, crowd);

  DdosMonitor monitor(test_config());
  monitor.ingest(updates_for(timeline.finalize()));
  monitor.check_now();

  EXPECT_FALSE(raised_for(monitor.alerts(), crowd.target));
  EXPECT_TRUE(monitor.active_alarms().empty());
}

TEST(Detection, FloodAndFlashCrowdTogetherOnlyVictimAlarms) {
  // The discrimination claim in one stream: same scale surge + attack.
  Timeline timeline(3);
  SynFloodConfig flood;
  flood.spoofed_sources = 10'000;
  add_syn_flood(timeline, flood);
  FlashCrowdConfig crowd;
  crowd.clients = 10'000;
  crowd.target = 0x0a000042;
  add_flash_crowd(timeline, crowd);

  DdosMonitor monitor(test_config());
  monitor.ingest(updates_for(timeline.finalize()));
  monitor.check_now();

  EXPECT_TRUE(raised_for(monitor.alerts(), flood.victim));
  EXPECT_FALSE(raised_for(monitor.alerts(), crowd.target));
}

TEST(Detection, AlertClearsWhenAttackSubsides) {
  DdosMonitorConfig config = test_config();
  config.check_interval = 256;
  DdosMonitor monitor(config);

  // Attack phase: 2000 spoofed half-open sources.
  std::vector<FlowUpdate> attack;
  for (Addr s = 0; s < 2000; ++s)
    attack.push_back({0x10000000 + s, 0xdead, +1});
  monitor.ingest(attack);
  monitor.check_now();
  ASSERT_TRUE(raised_for(monitor.alerts(), 0xdead));

  // Mitigation: the half-open connections are torn down (deletions).
  std::vector<FlowUpdate> teardown;
  for (Addr s = 0; s < 2000; ++s)
    teardown.push_back({0x10000000 + s, 0xdead, -1});
  monitor.ingest(teardown);
  monitor.check_now();

  EXPECT_TRUE(monitor.active_alarms().empty());
  const bool cleared = std::any_of(
      monitor.alerts().begin(), monitor.alerts().end(), [](const Alert& a) {
        return a.kind == Alert::Kind::kCleared && a.subject == 0xdead;
      });
  EXPECT_TRUE(cleared);
}

TEST(Detection, RankBySourceFlagsPortScanner) {
  Timeline timeline(4);
  BackgroundTrafficConfig background;
  background.sessions = 2000;
  add_background_traffic(timeline, background);
  PortScanConfig scan;
  scan.targets = 20'000;
  add_port_scan(timeline, scan);

  DdosMonitorConfig config = test_config();
  config.rank_by = DdosMonitorConfig::RankBy::kSource;
  config.min_absolute = 400;
  // The scan ramps gradually across the whole stream, so the EWMA baseline
  // learns it; the absolute threshold (footnote-3 style) must catch it.
  config.absolute_alarm = 2000;
  DdosMonitor monitor(config);
  monitor.ingest(updates_for(timeline.finalize()));
  monitor.check_now();

  EXPECT_TRUE(raised_for(monitor.alerts(), scan.scanner));
}

TEST(Detection, BaselineSuppressesSteadyHeavyDestination) {
  // A destination that is *always* busy should train its baseline up and not
  // alarm, while a fresh flood of the same magnitude does alarm.
  DdosMonitorConfig config = test_config();
  config.check_interval = 500;
  config.baseline_alpha = 0.5;  // fast adaptation for the test
  config.alarm_factor = 4.0;
  config.min_absolute = 300;
  config.warmup_checks = 4;  // bootstrap profiles on known-good traffic
  DdosMonitor monitor(config);

  // Steady state: destination 0xbeef always has ~500 half-open sources in
  // flight — each round opens a fresh wave and completes the previous one.
  Addr next_source = 0;
  for (int round = 0; round < 20; ++round) {
    std::vector<FlowUpdate> wave;
    const Addr wave_start = next_source;
    for (int i = 0; i < 500; ++i) wave.push_back({next_source++, 0xbeef, +1});
    if (round > 0) {
      for (int i = 0; i < 500; ++i)
        wave.push_back({static_cast<Addr>(wave_start - 500 + i), 0xbeef, -1});
    }
    monitor.ingest(wave);
  }
  const std::size_t alerts_before = monitor.alerts().size();

  // New victim floods from zero to 4000 — must alarm.
  std::vector<FlowUpdate> flood;
  for (Addr s = 0; s < 4000; ++s) flood.push_back({0x20000000 + s, 0xf00d, +1});
  monitor.ingest(flood);
  monitor.check_now();

  EXPECT_TRUE(raised_for(monitor.alerts(), 0xf00d));
  // The steady destination must not be among the active alarms now.
  const auto active = monitor.active_alarms();
  EXPECT_EQ(std::find(active.begin(), active.end(), 0xbeef), active.end())
      << "steady-state destination should have trained its baseline";
  (void)alerts_before;
}

TEST(Detection, WarmupSuppressesAlertsButTrainsBaselines) {
  DdosMonitorConfig config = test_config();
  config.check_interval = 256;
  config.warmup_checks = 1000;  // everything is warmup
  DdosMonitor monitor(config);
  std::vector<FlowUpdate> flood;
  for (Addr s = 0; s < 5000; ++s) flood.push_back({s, 0xabc, +1});
  monitor.ingest(flood);
  monitor.check_now();
  EXPECT_TRUE(monitor.alerts().empty());
  EXPECT_TRUE(monitor.active_alarms().empty());
}

TEST(Detection, AbsoluteAlarmFiresEvenWithTrainedBaseline) {
  DdosMonitorConfig config = test_config();
  config.check_interval = 200;
  config.baseline_alpha = 1.0;   // baseline == last estimate: ratio never fires
  config.alarm_factor = 100.0;
  config.absolute_alarm = 3000;  // but the hard ceiling must
  DdosMonitor monitor(config);
  // Gradual ramp: 200 new sources per check towards one destination.
  for (int wave = 0; wave < 30; ++wave) {
    std::vector<FlowUpdate> updates;
    for (int i = 0; i < 200; ++i)
      updates.push_back({static_cast<Addr>(wave * 200 + i), 0xfff, +1});
    monitor.ingest(updates);
  }
  EXPECT_TRUE(raised_for(monitor.alerts(), 0xfff));
}

TEST(Detection, ExporterTimeoutClearsStaleAttackState) {
  // With SYN-timeout reaping at the exporter, an attack that STOPS fades
  // from the sketch even though no ACKs ever arrive — the alert clears.
  FlowUpdateExporter exporter(1000, /*half_open_timeout=*/5000);
  DdosMonitorConfig config = test_config();
  config.check_interval = 128;
  DdosMonitor monitor(config);
  const auto feed = [&](const Packet& packet) {
    exporter.observe(packet,
                     [&](const FlowUpdate& u) { monitor.ingest(u); });
  };
  // Burst of 3000 spoofed SYNs in [0, 1000).
  for (Addr s = 0; s < 3000; ++s)
    feed({s % 1000, 0x30000000 + s, 0xdef, PacketType::kSyn});
  monitor.check_now();
  ASSERT_TRUE(raised_for(monitor.alerts(), 0xdef));

  // Quiet background traffic long after the timeout: the reaper emits the
  // -1s, the estimate collapses, the alarm clears.
  for (Addr i = 0; i < 2000; ++i)
    feed({20'000 + i, 0x40000000 + i, 0x111, PacketType::kSyn});
  monitor.check_now();
  const auto active = monitor.active_alarms();
  EXPECT_EQ(std::find(active.begin(), active.end(), 0xdef), active.end());
}

TEST(Detection, ConfigValidation) {
  DdosMonitorConfig config = test_config();
  config.top_k = 0;
  EXPECT_THROW(DdosMonitor{config}, std::invalid_argument);
  config = test_config();
  config.check_interval = 0;
  EXPECT_THROW(DdosMonitor{config}, std::invalid_argument);
  config = test_config();
  config.baseline_alpha = 0.0;
  EXPECT_THROW(DdosMonitor{config}, std::invalid_argument);
  config = test_config();
  config.alarm_factor = 1.0;
  EXPECT_THROW(DdosMonitor{config}, std::invalid_argument);
}

}  // namespace
}  // namespace dcs
