# Query-tier probe — runs *concurrently* with a dcs_collector that is
# mid-ingest and a dcs_query_server watching its publish directory (see
# query_smoke.cmake), so every assertion is against snapshots that are
# actively being published and remapped:
#   * /topk serves a generation with entries while deltas are merging,
#   * every route answers 200 with the expected JSON shape,
#   * time travel by generation works and an unretained generation is an
#     honest 404 (never a silent upgrade to newer data),
#   * identical requests return byte-identical payloads (cache contract).
# When MODE=final the probe instead asserts the end-state answer: the
# newest generation's top-1 must match EXPECT_GROUP/EXPECT_ESTIMATE taken
# from the collector's own final stdout — the bit-for-bit serving check.
# Writing STOP_FILE at the end releases the server from the pipeline.
#
# Inputs: -DPORT_FILE=... -DOUT_DIR=... -DSTOP_FILE=...
#         [-DMODE=live|final] [-DEXPECT_GROUP=...] [-DEXPECT_ESTIMATE=...]
find_program(CURL_EXE curl)
if(NOT MODE)
  set(MODE live)
endif()

function(fetch path out_var)
  set(url "http://127.0.0.1:${query_port}${path}")
  string(MAKE_C_IDENTIFIER "${path}" slug)
  set(out_file ${OUT_DIR}/probe${slug})
  file(REMOVE ${out_file})
  if(CURL_EXE)
    execute_process(COMMAND ${CURL_EXE} -s -S -g -m 5 -o ${out_file} ${url}
      RESULT_VARIABLE rc ERROR_VARIABLE fetch_err)
  else()
    file(DOWNLOAD ${url} ${out_file} TIMEOUT 5 STATUS status)
    list(GET status 0 rc)
    list(GET status 1 fetch_err)
  endif()
  if(NOT rc EQUAL 0 OR NOT EXISTS ${out_file})
    set(${out_var} "" PARENT_SCOPE)
    return()
  endif()
  file(READ ${out_file} text)
  set(${out_var} "${text}" PARENT_SCOPE)
endfunction()

function(finish)
  file(WRITE ${STOP_FILE} "done\n")
endfunction()

# The server publishes its port atomically once it is listening.
set(waited 0)
while(NOT EXISTS ${PORT_FILE})
  if(waited GREATER 300)
    finish()
    message(FATAL_ERROR "query_probe: ${PORT_FILE} never appeared")
  endif()
  execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.1)
  math(EXPR waited "${waited} + 1")
endwhile()
file(READ ${PORT_FILE} query_port)
string(STRIP "${query_port}" query_port)

# Poll until a generation with real content is being served. In live mode
# ingest is still running; in final mode the snapshots already exist.
set(topk "")
set(waited 0)
while(1)
  fetch("/topk" topk)
  if(topk MATCHES "\"generation\": [1-9]" AND topk MATCHES "\"group\": ")
    break()
  endif()
  if(waited GREATER 300)
    finish()
    message(FATAL_ERROR "query_probe: /topk never served a populated "
      "generation:\n${topk}")
  endif()
  execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.1)
  math(EXPR waited "${waited} + 1")
endwhile()

if(MODE STREQUAL "final")
  # End-state equality: the served top-1 must be the collector's own final
  # answer, bit for bit (same group, same estimate).
  if(NOT topk MATCHES "\"group\": \"${EXPECT_GROUP}\", \"estimate\": ${EXPECT_ESTIMATE}[^0-9]")
    finish()
    message(FATAL_ERROR "query_probe: final /topk does not carry the "
      "collector's answer dest=${EXPECT_GROUP} freq=${EXPECT_ESTIMATE}:\n"
      "${topk}")
  endif()
  fetch("/generations" generations)
  if(NOT generations MATCHES "\"generation\": [1-9]")
    finish()
    message(FATAL_ERROR "query_probe: /generations empty after restart:\n"
      "${generations}")
  endif()
  finish()
  message(STATUS "query_probe: final top-1 matches the collector bit-for-bit")
  return()
endif()

# --- live route sweep -------------------------------------------------------

fetch("/topk?k=3" topk3)
if(NOT topk3 MATCHES "\"k\": 3")
  finish()
  message(FATAL_ERROR "query_probe: /topk?k=3 malformed:\n${topk3}")
endif()

fetch("/frequency?key=1" frequency)
foreach(needle "\"key\": \"00000001\"" "\"estimate\": ")
  if(NOT frequency MATCHES "${needle}")
    finish()
    message(FATAL_ERROR "query_probe: /frequency missing '${needle}':\n"
      "${frequency}")
  endif()
endforeach()

fetch("/distinct_pairs" pairs)
if(NOT pairs MATCHES "\"distinct_pairs\": [0-9]+")
  finish()
  message(FATAL_ERROR "query_probe: /distinct_pairs malformed:\n${pairs}")
endif()

fetch("/alerts" alerts)
if(NOT alerts MATCHES "\"active_alarms\": [0-9]+" OR NOT alerts MATCHES "\"alerts\": ")
  finish()
  message(FATAL_ERROR "query_probe: /alerts malformed:\n${alerts}")
endif()

fetch("/sites" sites)
if(NOT sites MATCHES "\"site_id\": 9[^0-9]" OR NOT sites MATCHES "\"last_epoch\": ")
  finish()
  message(FATAL_ERROR "query_probe: /sites missing the live site:\n${sites}")
endif()

fetch("/generations" generations)
if(NOT generations MATCHES "\"generation\": 1[^0-9]")
  finish()
  message(FATAL_ERROR "query_probe: /generations missing generation 1:\n"
    "${generations}")
endif()

fetch("/healthz" healthz)
foreach(needle "\"status\": \"ok\"" "\"staleness_ms\": " "\"loaded_generations\": ")
  if(NOT healthz MATCHES "${needle}")
    finish()
    message(FATAL_ERROR "query_probe: /healthz missing '${needle}':\n"
      "${healthz}")
  endif()
endforeach()

fetch("/metrics" metrics)
foreach(needle "dcs_query_reloads_total [1-9]" "dcs_query_requests_total [1-9]"
        "dcs_query_loaded_generations [1-9]")
  if(NOT metrics MATCHES "${needle}")
    finish()
    message(FATAL_ERROR "query_probe: /metrics missing '${needle}':\n"
      "${metrics}")
  endif()
endforeach()

# Time travel: generation 1 stays addressable while newer ones land, and an
# absurd generation is an honest 404 body.
fetch("/topk?generation=1" time_travel)
if(NOT time_travel MATCHES "\"generation\": 1[^0-9]")
  finish()
  message(FATAL_ERROR "query_probe: ?generation=1 not served:\n${time_travel}")
endif()
fetch("/topk?generation=999999" pruned)
if(NOT pruned MATCHES "not retained")
  finish()
  message(FATAL_ERROR "query_probe: unretained generation not a 404:\n"
    "${pruned}")
endif()

# Cache contract over HTTP: identical request, identical bytes.
fetch("/topk?generation=1" time_travel_again)
if(NOT time_travel STREQUAL time_travel_again)
  finish()
  message(FATAL_ERROR "query_probe: repeated request returned different "
    "bytes:\n--- first:\n${time_travel}\n--- second:\n${time_travel_again}")
endif()

finish()
message(STATUS "query_probe: live sweep OK (all routes, time travel, cache)")
