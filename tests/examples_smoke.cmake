# Every example binary must run to completion and exit 0 (each example
# verifies its own scenario outcome and returns nonzero on semantic failure).
foreach(example ${EXAMPLES})
  execute_process(
    COMMAND ${EXAMPLES_DIR}/${example}
    RESULT_VARIABLE status
    OUTPUT_VARIABLE output
    ERROR_VARIABLE output
    TIMEOUT 300)
  if(NOT status EQUAL 0)
    message(FATAL_ERROR "example ${example} failed (${status}):\n${output}")
  endif()
endforeach()
