// Tests for count signatures: the exactness of empty/singleton/collision
// classification and the linearity (delete-resilience) of the structure.
#include "sketch/count_signature.hpp"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "common/random.hpp"

namespace dcs {
namespace {

class SignatureFixture {
 public:
  explicit SignatureFixture(int key_bits)
      : key_bits_(key_bits),
        counters_(static_cast<std::size_t>(key_bits) + 1, 0) {}

  CountSignatureView view() { return {counters_.data(), key_bits_}; }

 private:
  int key_bits_;
  std::vector<std::int64_t> counters_;
};

TEST(CountSignature, FreshBucketIsEmpty) {
  SignatureFixture fx(16);
  EXPECT_EQ(fx.view().classify().state, BucketState::kEmpty);
  EXPECT_TRUE(fx.view().all_zero());
}

TEST(CountSignature, SingleKeyIsSingletonAndRecovered) {
  SignatureFixture fx(16);
  auto sig = fx.view();
  sig.add(0xabcd, +1);
  const BucketClass cls = sig.classify();
  EXPECT_EQ(cls.state, BucketState::kSingleton);
  EXPECT_EQ(cls.key, 0xabcdu);
}

TEST(CountSignature, KeyZeroIsRecoverable) {
  // Key 0 sets no bit counters but the total still counts it.
  SignatureFixture fx(8);
  auto sig = fx.view();
  sig.add(0, +1);
  const BucketClass cls = sig.classify();
  EXPECT_EQ(cls.state, BucketState::kSingleton);
  EXPECT_EQ(cls.key, 0u);
}

TEST(CountSignature, MultiplicityKeepsSingleton) {
  SignatureFixture fx(16);
  auto sig = fx.view();
  for (int i = 0; i < 5; ++i) sig.add(0x1234, +1);
  const BucketClass cls = sig.classify();
  EXPECT_EQ(cls.state, BucketState::kSingleton);
  EXPECT_EQ(cls.key, 0x1234u);
  EXPECT_EQ(sig.total(), 5);
}

TEST(CountSignature, TwoDistinctKeysCollide) {
  SignatureFixture fx(16);
  auto sig = fx.view();
  sig.add(0x0001, +1);
  sig.add(0x0002, +1);
  EXPECT_EQ(sig.classify().state, BucketState::kCollision);
}

TEST(CountSignature, ExhaustivePairsNeverMisclassify) {
  // Every ordered pair of distinct 6-bit keys must classify as a collision;
  // every single key must be recovered exactly.
  constexpr int kBits = 6;
  for (PairKey a = 0; a < (1u << kBits); ++a) {
    SignatureFixture fx(kBits);
    auto sig = fx.view();
    sig.add(a, +1);
    const BucketClass single = sig.classify();
    ASSERT_EQ(single.state, BucketState::kSingleton);
    ASSERT_EQ(single.key, a);
    for (PairKey b = 0; b < (1u << kBits); ++b) {
      if (b == a) continue;
      SignatureFixture fx2(kBits);
      auto sig2 = fx2.view();
      sig2.add(a, +1);
      sig2.add(b, +1);
      ASSERT_EQ(sig2.classify().state, BucketState::kCollision)
          << "keys " << a << ", " << b;
    }
  }
}

TEST(CountSignature, DeleteRestoresExactPriorState) {
  SignatureFixture fx(32);
  auto sig = fx.view();
  sig.add(0xdeadbeef, +1);
  sig.add(0x12345678, +1);
  sig.add(0x12345678, -1);
  const BucketClass cls = sig.classify();
  EXPECT_EQ(cls.state, BucketState::kSingleton);
  EXPECT_EQ(cls.key, 0xdeadbeefu);
}

TEST(CountSignature, FullCancellationLeavesEmpty) {
  SignatureFixture fx(32);
  auto sig = fx.view();
  sig.add(0xdeadbeef, +1);
  sig.add(0xcafef00d, +1);
  sig.add(0xdeadbeef, -1);
  sig.add(0xcafef00d, -1);
  EXPECT_EQ(sig.classify().state, BucketState::kEmpty);
  EXPECT_TRUE(sig.all_zero());
}

TEST(CountSignature, CollisionToSingletonOnDelete) {
  // The deletion-side transition TrackingDcs cares about (Fig. 6 comment).
  SignatureFixture fx(16);
  auto sig = fx.view();
  sig.add(0x00ff, +1);
  sig.add(0xff00, +1);
  ASSERT_EQ(sig.classify().state, BucketState::kCollision);
  sig.add(0xff00, -1);
  const BucketClass cls = sig.classify();
  EXPECT_EQ(cls.state, BucketState::kSingleton);
  EXPECT_EQ(cls.key, 0x00ffu);
}

TEST(CountSignature, NegativeTotalIsReportedAsCollision) {
  SignatureFixture fx(8);
  auto sig = fx.view();
  sig.add(0x3, -1);  // spurious delete
  EXPECT_EQ(sig.classify().state, BucketState::kCollision);
}

TEST(CountSignature, ZeroTotalWithResidueIsCollision) {
  // Net-zero total but nonzero bit counters: only producible by spurious
  // deletes; must not classify as empty.
  SignatureFixture fx(8);
  auto sig = fx.view();
  sig.add(0x0f, +1);
  sig.add(0xf0, -1);
  EXPECT_EQ(sig.total(), 0);
  EXPECT_EQ(sig.classify().state, BucketState::kCollision);
}

TEST(CountSignature, SixtyFourBitKeysRoundTrip) {
  SignatureFixture fx(64);
  auto sig = fx.view();
  const PairKey key = 0xfedcba9876543210ULL;
  sig.add(key, +1);
  const BucketClass cls = sig.classify();
  EXPECT_EQ(cls.state, BucketState::kSingleton);
  EXPECT_EQ(cls.key, key);
}

// Property sweep: random insert/delete histories whose net effect is a
// single key must always classify as that singleton.
class SignatureProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SignatureProperty, RandomHistoryWithNetSingletonRecovers) {
  Xoshiro256 rng(GetParam());
  SignatureFixture fx(32);
  auto sig = fx.view();
  const PairKey survivor = rng() & 0xffffffffULL;
  sig.add(survivor, +1);
  // 50 other keys inserted then fully deleted, in interleaved order.
  std::vector<PairKey> transients;
  for (int i = 0; i < 50; ++i) {
    PairKey k = rng() & 0xffffffffULL;
    if (k == survivor) k ^= 1;
    transients.push_back(k);
    sig.add(k, +1);
  }
  while (!transients.empty()) {
    const std::size_t pick = rng.bounded(transients.size());
    sig.add(transients[pick], -1);
    transients.erase(transients.begin() + static_cast<std::ptrdiff_t>(pick));
  }
  const BucketClass cls = sig.classify();
  EXPECT_EQ(cls.state, BucketState::kSingleton);
  EXPECT_EQ(cls.key, survivor);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SignatureProperty,
                         ::testing::Range<std::uint64_t>(0, 20));

}  // namespace
}  // namespace dcs
