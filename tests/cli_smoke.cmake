# End-to-end smoke test for dcs_cli: every subcommand runs against a small
# generated trace and must exit 0. Invoked by ctest (see CMakeLists.txt).
file(MAKE_DIRECTORY ${WORK_DIR})

function(run_cli)
  execute_process(
    COMMAND ${DCS_CLI} ${ARGV}
    WORKING_DIRECTORY ${WORK_DIR}
    RESULT_VARIABLE status
    OUTPUT_VARIABLE output
    ERROR_VARIABLE output)
  if(NOT status EQUAL 0)
    message(FATAL_ERROR "dcs_cli ${ARGV} failed (${status}):\n${output}")
  endif()
endfunction()

run_cli(generate --out trace.bin --u 20000 --d 200 --z 1.5 --churn 1 --seed 3)
run_cli(generate --out trace.csv --u 1000 --d 20 --csv)
run_cli(info --trace trace.bin)
run_cli(topk --trace trace.bin --k 5)
run_cli(topk --trace trace.bin --k 5 --exact)
# Batched ingest must print exactly what sequential ingest prints.
execute_process(
  COMMAND ${DCS_CLI} topk --trace trace.bin --k 5
  WORKING_DIRECTORY ${WORK_DIR} RESULT_VARIABLE seq_status
  OUTPUT_VARIABLE seq_out ERROR_VARIABLE seq_err)
execute_process(
  COMMAND ${DCS_CLI} topk --trace trace.bin --k 5 --batch --block 100
  WORKING_DIRECTORY ${WORK_DIR} RESULT_VARIABLE batch_status
  OUTPUT_VARIABLE batch_out ERROR_VARIABLE batch_err)
if(NOT seq_status EQUAL 0 OR NOT batch_status EQUAL 0)
  message(FATAL_ERROR "topk --batch smoke failed:\n${seq_err}\n${batch_err}")
endif()
if(NOT seq_out STREQUAL batch_out)
  message(FATAL_ERROR "topk --batch output diverged from sequential:\n"
    "sequential:\n${seq_out}\nbatched:\n${batch_out}")
endif()
run_cli(topk --trace trace.bin --k 5 --threads 3)
run_cli(sketch --trace trace.bin --out a.dcs --seed 9)
run_cli(sketch --trace trace.bin --out b.dcs --seed 9)
run_cli(merge --out merged.dcs a.dcs b.dcs)
run_cli(query --sketch merged.dcs --k 3)
run_cli(query --sketch merged.dcs --tau 100)
run_cli(diff --base a.dcs --sketch b.dcs --k 3)

# Serialize -> deserialize -> query round trip: the persisted sketch must
# answer exactly what the live tracker answers on the same trace and
# parameters (the CRC-footered blob neither loses nor distorts state).
execute_process(
  COMMAND ${DCS_CLI} topk --trace trace.bin --k 5 --seed 9
  WORKING_DIRECTORY ${WORK_DIR} RESULT_VARIABLE live_status
  OUTPUT_VARIABLE live_out ERROR_VARIABLE live_err)
execute_process(
  COMMAND ${DCS_CLI} query --sketch a.dcs --k 5
  WORKING_DIRECTORY ${WORK_DIR} RESULT_VARIABLE persisted_status
  OUTPUT_VARIABLE persisted_out ERROR_VARIABLE persisted_err)
if(NOT live_status EQUAL 0 OR NOT persisted_status EQUAL 0)
  message(FATAL_ERROR "round-trip smoke failed:\n${live_err}\n${persisted_err}")
endif()
string(REGEX MATCHALL "[0-9]+  dest=[0-9a-f]+  frequency~[0-9]+"
  live_entries "${live_out}")
string(REGEX MATCHALL "[0-9]+  dest=[0-9a-f]+  frequency~[0-9]+"
  persisted_entries "${persisted_out}")
if("${live_entries}" STREQUAL "" OR
   NOT live_entries STREQUAL persisted_entries)
  message(FATAL_ERROR "persisted-sketch query diverged from live topk:\n"
    "live:\n${live_out}\npersisted:\n${persisted_out}")
endif()
run_cli(monitor --trace trace.bin --min-absolute 100)
run_cli(monitor --trace trace.bin --by-source --min-absolute 100)

# Telemetry export: the snapshot files must exist and carry the core
# counters in both formats, and the alert log must be a JSON array.
run_cli(topk --trace trace.bin --k 5 --metrics-out metrics.prom)
file(READ ${WORK_DIR}/metrics.prom prom_text)
foreach(needle
    "# TYPE dcs_sketch_updates_total counter"
    "# TYPE dcs_tracking_updates_total counter"
    "dcs_tracking_updates_total [1-9]"
    "# TYPE dcs_tracking_query_latency_ns histogram"
    "dcs_tracking_query_latency_ns_count [1-9]")
  if(NOT prom_text MATCHES "${needle}")
    message(FATAL_ERROR "metrics.prom is missing '${needle}':\n${prom_text}")
  endif()
endforeach()

run_cli(monitor --trace trace.bin --min-absolute 100
  --metrics-out metrics.json --metrics-format json --alerts-out alerts.json)
file(READ ${WORK_DIR}/metrics.json json_text)
foreach(needle "dcs_monitor_checks_total" "dcs_tracking_updates_total"
    "\"histograms\":")
  if(NOT json_text MATCHES "${needle}")
    message(FATAL_ERROR "metrics.json is missing '${needle}':\n${json_text}")
  endif()
endforeach()
file(READ ${WORK_DIR}/alerts.json alerts_text)
if(NOT alerts_text MATCHES "^\\[")
  message(FATAL_ERROR "alerts.json is not a JSON array:\n${alerts_text}")
endif()
if(CMAKE_VERSION VERSION_GREATER_EQUAL 3.19)
  # Both documents must parse as JSON, and the monitor counter must be a
  # plain number.
  string(JSON n_counters LENGTH "${json_text}" counters)
  if(n_counters LESS 5)
    message(FATAL_ERROR "metrics.json has only ${n_counters} counters")
  endif()
  string(JSON alerts_len LENGTH "${alerts_text}")
  message(STATUS "metrics.json: ${n_counters} counters; "
    "alerts.json: ${alerts_len} events")
endif()

# An unknown metrics format must fail cleanly.
execute_process(COMMAND ${DCS_CLI} topk --trace trace.bin --metrics-out x
    --metrics-format yaml
  WORKING_DIRECTORY ${WORK_DIR} RESULT_VARIABLE status
  OUTPUT_QUIET ERROR_QUIET)
if(status EQUAL 0)
  message(FATAL_ERROR "unknown --metrics-format should fail")
endif()

# convert: text packet log -> trace, then query it.
file(WRITE ${WORK_DIR}/packets.txt
"# ts source dest flag
0 10.0.0.1 192.168.1.1 S
5 10.0.0.2 192.168.1.1 S
9 10.0.0.1 192.168.1.1 A
20 3232235777 500 S
")
run_cli(convert --in packets.txt --out converted.bin)
run_cli(info --trace converted.bin)
run_cli(convert --in packets.txt --out converted_timeout.bin --timeout 100)

# Failure paths must fail cleanly (nonzero exit, no crash).
execute_process(COMMAND ${DCS_CLI} query --sketch missing.dcs
  WORKING_DIRECTORY ${WORK_DIR} RESULT_VARIABLE status
  OUTPUT_QUIET ERROR_QUIET)
if(status EQUAL 0)
  message(FATAL_ERROR "query of a missing sketch should fail")
endif()
execute_process(COMMAND ${DCS_CLI} not-a-command
  WORKING_DIRECTORY ${WORK_DIR} RESULT_VARIABLE status
  OUTPUT_QUIET ERROR_QUIET)
if(status EQUAL 0)
  message(FATAL_ERROR "unknown command should fail")
endif()
