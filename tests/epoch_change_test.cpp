// Tests for the epoch-based heavy-change detector.
#include "detection/epoch_change.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.hpp"
#include "net/exporter.hpp"
#include "net/scenarios.hpp"

namespace dcs {
namespace {

EpochChangeDetector::Config test_config(std::uint64_t epoch_updates) {
  EpochChangeDetector::Config config;
  config.sketch.seed = 3;
  config.epoch_updates = epoch_updates;
  config.top_k = 5;
  return config;
}

TEST(EpochChange, RejectsBadConfig) {
  auto config = test_config(0);
  EXPECT_THROW(EpochChangeDetector{config}, std::invalid_argument);
  config = test_config(10);
  config.top_k = 0;
  EXPECT_THROW(EpochChangeDetector{config}, std::invalid_argument);
}

TEST(EpochChange, ReportsAtEpochBoundaries) {
  EpochChangeDetector detector(test_config(100));
  for (Addr i = 0; i < 250; ++i) detector.update(1, i, +1);
  EXPECT_EQ(detector.reports().size(), 2u);
  EXPECT_EQ(detector.reports()[0].epoch, 0u);
  EXPECT_EQ(detector.reports()[1].epoch, 1u);
  detector.close_epoch();
  EXPECT_EQ(detector.reports().size(), 3u);
}

TEST(EpochChange, FirstEpochEqualsCumulative) {
  // Few enough pairs that the sample is complete at level 0: the first
  // epoch's change report is exact and equals the cumulative view.
  EpochChangeDetector detector(test_config(1000));
  for (Addr i = 0; i < 60; ++i) detector.update(7, i, +1);
  const auto changes = detector.current_changes(1);
  ASSERT_EQ(changes.size(), 1u);
  EXPECT_EQ(changes[0].group, 7u);
  EXPECT_EQ(changes[0].estimate, 60u);
  EXPECT_EQ(detector.cumulative().top_k(1).entries[0].estimate, 60u);
}

TEST(EpochChange, DetectsOnsetAgainstPersistentHeavyHitter) {
  // Destination 5 is persistently huge; destination 9 surges in epoch 2.
  // Absolute top-1 stays 5; per-epoch change must flag 9.
  EpochChangeDetector detector(test_config(10'000));
  for (Addr s = 0; s < 9'000; ++s) detector.update(5, s, +1);
  for (Addr s = 0; s < 1'000; ++s) detector.update(6, s, +1);
  ASSERT_EQ(detector.reports().size(), 1u);
  EXPECT_EQ(detector.reports()[0].top_changes[0].group, 5u);

  // Epoch 2: 5 gains only 1000 new sources; 9 gains 8000.
  for (Addr s = 9'000; s < 10'000; ++s) detector.update(5, s, +1);
  for (Addr s = 0; s < 8'000; ++s) detector.update(9, s, +1);
  for (Addr s = 0; s < 1'000; ++s) detector.update(10, s, +1);
  ASSERT_EQ(detector.reports().size(), 2u);
  const auto& onset = detector.reports()[1].top_changes;
  ASSERT_FALSE(onset.empty());
  EXPECT_EQ(onset[0].group, 9u);

  // The cumulative view still ranks 5 first.
  EXPECT_EQ(detector.cumulative().top_k(1).entries[0].group, 5u);
}

TEST(EpochChange, QuietEpochReportsNothingBig) {
  EpochChangeDetector detector(test_config(1000));
  for (Addr s = 0; s < 1000; ++s) detector.update(1, s, +1);  // epoch 0: surge
  // Epoch 1: insert+delete churn only (net zero).
  for (Addr s = 0; s < 500; ++s) {
    detector.update(2, s, +1);
    detector.update(2, s, -1);
  }
  ASSERT_EQ(detector.reports().size(), 2u);
  const auto& quiet = detector.reports()[1].top_changes;
  for (const TopKEntry& entry : quiet)
    EXPECT_LE(entry.estimate, 8u) << "ghost change in a net-zero epoch";
}

TEST(EpochChange, AttackOnsetThroughFullPipeline) {
  // Background for the first window, flood starting later: the flood's onset
  // epoch must rank the victim first in the change report.
  Timeline timeline(6);
  BackgroundTrafficConfig background;
  background.sessions = 5000;
  background.duration_ticks = 50'000;
  add_background_traffic(timeline, background);
  SynFloodConfig flood;
  flood.spoofed_sources = 8000;
  flood.start_tick = 60'000;
  flood.duration_ticks = 10'000;
  add_syn_flood(timeline, flood);

  FlowUpdateExporter exporter;
  const auto updates = exporter.run(timeline.finalize());

  EpochChangeDetector detector(test_config(4096));
  detector.ingest(updates);
  detector.close_epoch();

  // Find the report where the victim first dominates.
  bool found = false;
  for (const auto& report : detector.reports()) {
    if (!report.top_changes.empty() &&
        report.top_changes[0].group == flood.victim &&
        report.top_changes[0].estimate > 1000) {
      found = true;
      break;
    }
  }
  EXPECT_TRUE(found) << "no epoch flagged the flood onset";
}

TEST(EpochChange, MemoryIsTwoSketchesPlusReports) {
  EpochChangeDetector detector(test_config(1000));
  for (Addr s = 0; s < 5000; ++s) detector.update(1, s, +1);
  EXPECT_GE(detector.memory_bytes(),
            2 * detector.cumulative().memory_bytes() / 2);
  EXPECT_GT(detector.memory_bytes(), detector.cumulative().memory_bytes());
}

}  // namespace
}  // namespace dcs
