// Tests for the exact (ground-truth) tracker, including the paper's
// brute-force space accounting.
#include "baselines/exact_tracker.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/random.hpp"

namespace dcs {
namespace {

TEST(ExactTracker, EmptyAnswers) {
  ExactTracker tracker;
  EXPECT_TRUE(tracker.top_k(3).entries.empty());
  EXPECT_EQ(tracker.frequency(1), 0u);
  EXPECT_EQ(tracker.distinct_pairs(), 0u);
}

TEST(ExactTracker, CountsDistinctMembersOnly) {
  ExactTracker tracker;
  tracker.update(1, 10, +1);
  tracker.update(1, 10, +1);  // duplicate: still one distinct source
  tracker.update(1, 11, +1);
  EXPECT_EQ(tracker.frequency(1), 2u);
}

TEST(ExactTracker, DeleteToZeroRemoves) {
  ExactTracker tracker;
  tracker.update(1, 10, +1);
  tracker.update(1, 10, -1);
  EXPECT_EQ(tracker.frequency(1), 0u);
  EXPECT_EQ(tracker.distinct_pairs(), 0u);
}

TEST(ExactTracker, MultiplicityRequiresEqualDeletes) {
  ExactTracker tracker;
  tracker.update(1, 10, +1);
  tracker.update(1, 10, +1);
  tracker.update(1, 10, -1);
  EXPECT_EQ(tracker.frequency(1), 1u);  // net count still positive
  tracker.update(1, 10, -1);
  EXPECT_EQ(tracker.frequency(1), 0u);
}

TEST(ExactTracker, DeleteBeforeInsertNets) {
  // Shuffled streams can deliver the delete first; net-positive semantics
  // (paper §2: OCCUR(+1) > OCCUR(-1)) must still hold.
  ExactTracker tracker;
  tracker.update(1, 10, -1);
  EXPECT_EQ(tracker.frequency(1), 0u);
  tracker.update(1, 10, +1);
  EXPECT_EQ(tracker.frequency(1), 0u);  // net is zero
  tracker.update(1, 10, +1);
  EXPECT_EQ(tracker.frequency(1), 1u);
}

TEST(ExactTracker, TopKOrdersByFrequencyThenId) {
  ExactTracker tracker;
  tracker.update(5, 1, +1);
  tracker.update(5, 2, +1);
  tracker.update(3, 1, +1);
  tracker.update(3, 2, +1);
  tracker.update(9, 1, +1);
  const auto top = tracker.top_k(3).entries;
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0], (TopKEntry{3, 2}));  // tie with 5 broken by smaller id
  EXPECT_EQ(top[1], (TopKEntry{5, 2}));
  EXPECT_EQ(top[2], (TopKEntry{9, 1}));
}

TEST(ExactTracker, GroupsAboveThreshold) {
  ExactTracker tracker;
  for (Addr dest = 1; dest <= 5; ++dest)
    for (Addr source = 0; source < dest * 10; ++source)
      tracker.update(dest, source, +1);
  const auto above = tracker.groups_above(30);
  ASSERT_EQ(above.size(), 3u);  // dests 3, 4, 5 have 30, 40, 50
  EXPECT_EQ(above[0], (TopKEntry{5, 50}));
  EXPECT_EQ(above[2], (TopKEntry{3, 30}));
}

TEST(ExactTracker, MatchesNaiveModelUnderChurn) {
  ExactTracker tracker;
  std::map<PairKey, std::int64_t> model;
  Xoshiro256 rng(15);
  for (int step = 0; step < 50'000; ++step) {
    const Addr dest = static_cast<Addr>(rng.bounded(20));
    const Addr source = static_cast<Addr>(rng.bounded(50));
    const int delta = rng.bounded(2) == 0 ? +1 : -1;
    tracker.update(dest, source, delta);
    model[pack_pair(dest, source)] += delta;
  }
  std::map<Addr, std::uint64_t> expected;
  for (const auto& [key, net] : model)
    if (net > 0) ++expected[pair_group(key)];
  for (Addr dest = 0; dest < 20; ++dest) {
    const auto it = expected.find(dest);
    EXPECT_EQ(tracker.frequency(dest), it == expected.end() ? 0u : it->second)
        << "dest " << dest;
  }
}

TEST(ExactTracker, PaperAccountingIs96MBForPaperU) {
  // §6.1: 8e6 pairs * 12 bytes = 96 MB.
  EXPECT_EQ(ExactTracker::paper_accounting_bytes(8'000'000),
            std::size_t{96'000'000});
}

TEST(ExactTracker, MemoryGrowsWithPairs) {
  ExactTracker tracker;
  const std::size_t empty_bytes = tracker.memory_bytes();
  for (Addr i = 0; i < 10'000; ++i) tracker.update(i % 100, i, +1);
  EXPECT_GT(tracker.memory_bytes(), empty_bytes + 10'000 * 12);
}

}  // namespace
}  // namespace dcs
