// Tests for CountSketch and k-ary sketch change detection.
#include "baselines/count_sketch.hpp"

#include <gtest/gtest.h>

#include "common/random.hpp"

namespace dcs {
namespace {

TEST(CountSketch, RejectsBadConstruction) {
  EXPECT_THROW(CountSketch(0, 16), std::invalid_argument);
  EXPECT_THROW(CountSketch(3, 1), std::invalid_argument);
}

TEST(CountSketch, ExactForIsolatedKey) {
  CountSketch cs(5, 1024, 3);
  cs.add(42, 100);
  cs.add(42, -30);
  EXPECT_EQ(cs.estimate(42), 70);
  EXPECT_EQ(cs.estimate(43), 0);
}

TEST(CountSketch, HeavyKeyAccurateUnderNoise) {
  CountSketch cs(5, 2048, 7);
  Xoshiro256 rng(5);
  cs.add(999, 50'000);
  for (int i = 0; i < 20'000; ++i) cs.add(rng(), 1);
  const double estimate = static_cast<double>(cs.estimate(999));
  EXPECT_NEAR(estimate, 50'000.0, 2500.0);
}

TEST(CountSketch, SupportsDeletionsToZero) {
  CountSketch cs(5, 512, 1);
  for (int i = 0; i < 100; ++i) cs.add(7, +1);
  for (int i = 0; i < 100; ++i) cs.add(7, -1);
  EXPECT_EQ(cs.estimate(7), 0);
  EXPECT_NEAR(cs.energy(), 0.0, 1e-9);
}

TEST(CountSketch, CombineIsLinear) {
  CountSketch a(4, 256, 2), b(4, 256, 2);
  a.add(1, 10);
  b.add(1, 4);
  b.add(2, 6);
  a.combine(1.0, b, -1.0);  // a - b
  EXPECT_EQ(a.estimate(1), 6);
  EXPECT_EQ(a.estimate(2), -6);
}

TEST(CountSketch, CombineRejectsLayoutMismatch) {
  CountSketch a(4, 256, 1), b(4, 256, 2);
  EXPECT_THROW(a.combine(1.0, b, 1.0), std::invalid_argument);
}

TEST(KaryChange, RejectsBadConfig) {
  KarySketchChange::Config config;
  config.alpha = 0.0;
  EXPECT_THROW(KarySketchChange{config}, std::invalid_argument);
  config = {};
  config.threshold = 0.0;
  EXPECT_THROW(KarySketchChange{config}, std::invalid_argument);
}

TEST(KaryChange, NoForecastUntilSecondEpoch) {
  KarySketchChange detector;
  detector.add(1, 100);
  EXPECT_FALSE(detector.close_epoch());  // first epoch only seeds
  detector.add(1, 100);
  EXPECT_TRUE(detector.close_epoch());
}

TEST(KaryChange, StableTrafficScoresLow) {
  KarySketchChange detector;
  for (int epoch = 0; epoch < 5; ++epoch) {
    for (std::uint64_t key = 0; key < 50; ++key)
      detector.add(key, 100);  // identical every epoch
    detector.close_epoch();
  }
  for (std::uint64_t key = 0; key < 50; ++key)
    EXPECT_FALSE(detector.is_significant_change(key)) << "key " << key;
}

TEST(KaryChange, SurgeIsFlagged) {
  KarySketchChange detector;
  // Three stable epochs...
  for (int epoch = 0; epoch < 3; ++epoch) {
    for (std::uint64_t key = 0; key < 50; ++key) detector.add(key, 100);
    detector.close_epoch();
  }
  // ...then key 7 surges 50x while everything else stays flat.
  for (std::uint64_t key = 0; key < 50; ++key) detector.add(key, 100);
  detector.add(7, 5000);
  detector.close_epoch();
  EXPECT_TRUE(detector.is_significant_change(7));
  EXPECT_FALSE(detector.is_significant_change(8));
  EXPECT_GT(detector.change_score(7), 5.0 * detector.change_score(8));
}

TEST(KaryChange, VolumeDetectorCannotTellCrowdFromAttack) {
  // The comparison point for the paper: a flash crowd (huge volume, all
  // legitimate) scores as high as an attack of the same volume — the
  // change detector sees volume only.
  KarySketchChange detector;
  for (int epoch = 0; epoch < 3; ++epoch) {
    detector.add(1, 1000);  // steady site
    detector.close_epoch();
  }
  detector.add(1, 1000);
  detector.add(100, 50'000);  // "crowd" destination
  detector.add(200, 50'000);  // "attack" destination, same volume
  detector.close_epoch();
  EXPECT_TRUE(detector.is_significant_change(100));
  EXPECT_TRUE(detector.is_significant_change(200));
  EXPECT_NEAR(detector.change_score(100), detector.change_score(200),
              0.15 * detector.change_score(200));
}

}  // namespace
}  // namespace dcs
