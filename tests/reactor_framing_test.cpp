// Frame-reassembly fuzz matrix for the epoll reactor (service/reactor.cpp).
//
// The reactor's read path must reassemble CRC frames across ARBITRARY
// EAGAIN boundaries: one byte per wakeup, a split at every single byte
// offset of a session (header fields, payload, CRC — every boundary is
// hit), or fifty frames coalesced into one read. Malformed input must
// disconnect exactly the offending peer with the right counter bumped —
// never a neighbor, never the merged state. And the reply path must
// survive a peer that floods requests without draining acks (partial
// send()s on the non-blocking socket).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <netinet/in.h>
#include <optional>
#include <sstream>
#include <string>
#include <sys/socket.h>
#include <thread>
#include <vector>

#include "service/collector.hpp"
#include "service/socket.hpp"
#include "service/wire.hpp"
#include "sketch/distinct_count_sketch.hpp"

namespace dcs::service {
namespace {

DcsParams small_params() {
  DcsParams params;
  params.num_tables = 3;
  params.buckets_per_table = 64;
  params.seed = 17;
  return params;
}

CollectorConfig reactor_config() {
  CollectorConfig config;
  config.params = small_params();
  config.io_timeout_ms = 20;
  config.use_reactor = true;
  config.reactor_workers = 2;
  config.run_detection = false;
  return config;
}

std::string sketch_bytes(const DistinctCountSketch& sketch) {
  std::ostringstream out(std::ios::binary);
  BinaryWriter writer(out);
  sketch.serialize(writer);
  return std::move(out).str();
}

std::string hello_frame(std::uint64_t site, std::uint64_t first_epoch = 1) {
  Hello hello;
  hello.site_id = site;
  hello.params_fingerprint = small_params().fingerprint();
  hello.first_epoch = first_epoch;
  return encode_frame(MsgType::kHello, hello.encode());
}

/// One-update delta frame; the update is (epoch, site*1000) so every
/// epoch/site combination contributes distinct bits to the merged sketch.
std::string delta_frame(std::uint64_t site, std::uint64_t epoch) {
  DistinctCountSketch sketch(small_params());
  sketch.update(static_cast<Addr>(site), static_cast<Addr>(epoch * 7 + 1),
                +1);
  SnapshotDelta delta;
  delta.site_id = site;
  delta.epoch = epoch;
  delta.updates = 1;
  delta.sketch_blob = sketch_bytes(sketch);
  return encode_frame(MsgType::kSnapshotDelta, delta.encode());
}

struct RawClient {
  std::optional<TcpSocket> socket;
  FrameDecoder decoder;
  char buffer[8192];

  explicit RawClient(std::uint16_t port, int timeout_ms = 3000) {
    socket = tcp_connect("127.0.0.1", port, 1000);
    if (socket)
      socket->set_timeouts(static_cast<std::uint64_t>(timeout_ms),
                           static_cast<std::uint64_t>(timeout_ms));
  }
  bool ok() const { return socket.has_value(); }
  bool send(const std::string& bytes) { return socket->send_all(bytes); }
  std::optional<Ack> read_ack() {
    for (;;) {
      if (auto frame = decoder.next()) {
        EXPECT_EQ(frame->type, MsgType::kAck);
        return Ack::decode(frame->payload, frame->version);
      }
      const RecvResult got = socket->recv_some(buffer, sizeof buffer);
      if (got.bytes == 0) return std::nullopt;
      decoder.feed(buffer, got.bytes);
    }
  }
  bool wait_for_drop() {
    for (int i = 0; i < 200; ++i) {
      const RecvResult got = socket->recv_some(buffer, sizeof buffer);
      if (got.closed || got.error) return true;
      if (got.timed_out) return false;
    }
    return false;
  }
};

// --- reassembly across EAGAIN boundaries ------------------------------------

/// An entire session — Hello, three deltas, Bye — dribbled one byte per
/// send(). Every byte lands in its own epoll wakeup (or coalesces with a
/// handful of neighbors under scheduler jitter); the decoded frame sequence
/// must be identical either way.
TEST(ReactorFraming, OneByteDribbleReassemblesWholeSession) {
  CollectorConfig config = reactor_config();
  config.frame_deadline_ms = 0;  // the dribble IS the test; don't reap it
  config.idle_timeout_ms = 0;
  Collector collector(config);
  collector.start();

  std::string session = hello_frame(1);
  for (std::uint64_t epoch = 1; epoch <= 3; ++epoch)
    session += delta_frame(1, epoch);
  Bye bye;
  bye.site_id = 1;
  session += encode_frame(MsgType::kBye, bye.encode());

  RawClient client(collector.port());
  ASSERT_TRUE(client.ok());
  for (char byte : session)
    ASSERT_TRUE(client.send(std::string(1, byte)));

  // Hello ack + 3 delta acks, in order.
  auto hello_ack = client.read_ack();
  ASSERT_TRUE(hello_ack.has_value());
  EXPECT_EQ(hello_ack->status, AckStatus::kOk);
  for (std::uint64_t epoch = 1; epoch <= 3; ++epoch) {
    auto ack = client.read_ack();
    ASSERT_TRUE(ack.has_value());
    EXPECT_EQ(ack->status, AckStatus::kOk);
    EXPECT_EQ(ack->epoch, epoch);
  }
  ASSERT_TRUE(collector.wait_for_byes(1, 5000));
  const auto stats = collector.stats();
  EXPECT_EQ(stats.deltas_merged, 3u);
  EXPECT_EQ(stats.frame_errors, 0u);
  collector.stop();
}

/// Split a Hello+delta session at EVERY byte offset — both the prefix and
/// the suffix arrive in separate sends, so each run exercises a different
/// header/payload/CRC boundary. Every split must merge exactly its one
/// epoch.
TEST(ReactorFraming, SplitAtEveryByteBoundary) {
  Collector collector(reactor_config());
  collector.start();

  // Each split run uses its own connection and epoch. The offset walk
  // covers every byte of the Hello frame (magic, version, type, length,
  // payload, CRC — every field boundary), the delta's header plus its
  // first payload bytes, and the delta's final 8 bytes (payload end + CRC),
  // which together hit every boundary type without walking the multi-KiB
  // sketch blob byte by byte.
  const std::string hello = hello_frame(7);
  const std::size_t head_splits = hello.size() - 1;
  const std::size_t delta_head_splits = kFrameHeaderBytes + 17;
  const std::size_t tail_splits = 8;
  const std::size_t total = head_splits + delta_head_splits + tail_splits;

  std::uint64_t expected_merges = 0;
  for (std::size_t k = 0; k < total; ++k) {
    const std::uint64_t epoch = static_cast<std::uint64_t>(k) + 1;
    const std::string session = hello + delta_frame(7, epoch);
    std::size_t offset;
    if (k < head_splits)
      offset = k + 1;
    else if (k < head_splits + delta_head_splits)
      offset = hello.size() + (k - head_splits);
    else
      offset = session.size() - (total - k);
    ASSERT_GT(offset, 0u);
    ASSERT_LT(offset, session.size());
    RawClient client(collector.port());
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE(client.send(session.substr(0, offset)));
    ASSERT_TRUE(client.send(session.substr(offset)));
    auto hello_ack = client.read_ack();
    ASSERT_TRUE(hello_ack.has_value()) << "split at " << offset;
    auto ack = client.read_ack();
    ASSERT_TRUE(ack.has_value()) << "split at " << offset;
    EXPECT_EQ(ack->epoch, epoch);
    EXPECT_EQ(ack->status, AckStatus::kOk);
    ++expected_merges;
  }
  ASSERT_TRUE(collector.wait_for_deltas(expected_merges, 10000));
  const auto stats = collector.stats();
  EXPECT_EQ(stats.deltas_merged, expected_merges);
  EXPECT_EQ(stats.frame_errors, 0u);
  collector.stop();
}

/// Fifty frames coalesced into a single send() — one read wakeup carries
/// many complete frames plus a partial tail; all must decode, in order.
TEST(ReactorFraming, CoalescedMultiFrameRead) {
  Collector collector(reactor_config());
  collector.start();

  std::string burst = hello_frame(3);
  constexpr std::uint64_t kEpochs = 49;
  for (std::uint64_t epoch = 1; epoch <= kEpochs; ++epoch)
    burst += delta_frame(3, epoch);

  RawClient client(collector.port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client.send(burst));
  auto hello_ack = client.read_ack();
  ASSERT_TRUE(hello_ack.has_value());
  for (std::uint64_t epoch = 1; epoch <= kEpochs; ++epoch) {
    auto ack = client.read_ack();
    ASSERT_TRUE(ack.has_value()) << "epoch " << epoch;
    EXPECT_EQ(ack->epoch, epoch);
  }
  const auto stats = collector.stats();
  EXPECT_EQ(stats.deltas_merged, kEpochs);
  EXPECT_EQ(stats.frame_errors, 0u);
  collector.stop();
}

// --- malformed input isolation ----------------------------------------------

/// A truncated tail (half a frame, then FIN) is not an error — the
/// connection ends, nothing merges from the partial frame, and the frames
/// before the truncation point are intact.
TEST(ReactorFraming, TruncatedTailDisconnectsCleanly) {
  Collector collector(reactor_config());
  collector.start();

  const std::string full = delta_frame(4, 2);
  std::string session = hello_frame(4) + delta_frame(4, 1) +
                        full.substr(0, full.size() / 2);
  RawClient client(collector.port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client.send(session));
  auto hello_ack = client.read_ack();
  ASSERT_TRUE(hello_ack.has_value());
  auto ack = client.read_ack();
  ASSERT_TRUE(ack.has_value());
  EXPECT_EQ(ack->epoch, 1u);
  client.socket->shutdown();  // FIN with the tail incomplete

  ASSERT_TRUE(collector.wait_for_deltas(1, 5000));
  // Give the reactor a beat to process the EOF, then assert no error and
  // no phantom merge.
  for (int i = 0; i < 100 && collector.connection_count() > 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(collector.connection_count(), 0u);
  const auto stats = collector.stats();
  EXPECT_EQ(stats.deltas_merged, 1u);
  EXPECT_EQ(stats.frame_errors, 0u);
  collector.stop();
}

/// Garbage bytes after a valid prefix kill exactly that peer with
/// frame_errors bumped — and a well-formed neighbor streaming concurrently
/// is untouched: its deltas all merge and the merged sketch equals the
/// neighbor-only reference (the abuser contributed nothing).
TEST(ReactorFraming, GarbageDropsOnePeerNeverCorruptsNeighbor) {
  Collector collector(reactor_config());
  collector.start();

  RawClient good(collector.port());
  ASSERT_TRUE(good.ok());
  ASSERT_TRUE(good.send(hello_frame(1)));
  ASSERT_TRUE(good.read_ack().has_value());

  RawClient abuser(collector.port());
  ASSERT_TRUE(abuser.ok());
  ASSERT_TRUE(abuser.send(hello_frame(2)));
  ASSERT_TRUE(abuser.read_ack().has_value());

  // Interleave: neighbor delta, garbage, neighbor delta.
  DistinctCountSketch reference(small_params());
  reference.update(1, 8, +1);   // delta_frame(1, 1)
  reference.update(1, 15, +1);  // delta_frame(1, 2)

  ASSERT_TRUE(good.send(delta_frame(1, 1)));
  auto first = good.read_ack();
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(abuser.send("garbage that is definitely not a DCSW frame"));
  EXPECT_TRUE(abuser.wait_for_drop());
  ASSERT_TRUE(good.send(delta_frame(1, 2)));
  auto second = good.read_ack();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->epoch, 2u);
  EXPECT_EQ(second->status, AckStatus::kOk);

  const auto stats = collector.stats();
  EXPECT_EQ(stats.frame_errors, 1u);
  EXPECT_EQ(stats.deltas_merged, 2u);
  EXPECT_TRUE(collector.merged_sketch() == reference);
  collector.stop();
}

/// Bad-CRC and bad-magic each kill exactly one peer; N abusers -> N
/// frame_errors, zero merges, zero crashes.
TEST(ReactorFraming, EachMalformedPeerCountsOnce) {
  Collector collector(reactor_config());
  collector.start();

  std::string bad_crc = hello_frame(11);
  bad_crc[bad_crc.size() - 1] ^= 0x01;
  std::string bad_magic = hello_frame(12);
  bad_magic[0] ^= 0x01;
  std::string bad_version = hello_frame(13);
  bad_version[4] = 99;

  for (const std::string* poison : {&bad_crc, &bad_magic, &bad_version}) {
    RawClient client(collector.port());
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE(client.send(*poison));
    EXPECT_TRUE(client.wait_for_drop());
  }
  const auto stats = collector.stats();
  EXPECT_EQ(stats.frame_errors, 3u);
  EXPECT_EQ(stats.deltas_merged, 0u);
  collector.stop();
}

/// Oversized announced length (above --max-frame-bytes) is rejected from
/// the header alone: the peer dies before the payload is ever buffered.
TEST(ReactorFraming, OversizedAnnouncementRejectedAtHeader) {
  CollectorConfig config = reactor_config();
  config.max_frame_bytes = 4096;
  Collector collector(config);
  collector.start();

  // A raw header announcing a 1 MiB heartbeat; never send the payload.
  std::string huge = encode_frame(MsgType::kHeartbeat,
                                  std::string(1 << 20, 'x'));
  RawClient client(collector.port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client.send(huge.substr(0, kFrameHeaderBytes)));
  EXPECT_TRUE(client.wait_for_drop());
  const auto stats = collector.stats();
  EXPECT_EQ(stats.frame_errors, 1u);
  collector.stop();
}

// --- deadline & reply-path regressions --------------------------------------

/// The non-refreshing frame deadline survives the transplant: a peer
/// dribbling a frame slower than the deadline is dropped with
/// deadline_drops bumped, even though every dribble resets last_activity.
TEST(ReactorFraming, SlowLorisHitsDeadlineDespiteDribbling) {
  CollectorConfig config = reactor_config();
  config.frame_deadline_ms = 200;
  config.idle_timeout_ms = 0;
  config.io_timeout_ms = 20;  // tick: sweep granularity
  Collector collector(config);
  collector.start();

  RawClient client(collector.port());
  ASSERT_TRUE(client.ok());
  const std::string frame = hello_frame(1);
  // One byte every 40 ms: activity never stops, but the first frame can
  // never complete before the 200 ms deadline. Sends start failing (RST)
  // once the collector drops us.
  bool dropped = false;
  for (std::size_t i = 0; i < frame.size() - 1 && !dropped; ++i) {
    if (!client.send(std::string(1, frame[i]))) {
      dropped = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
  }
  if (!dropped) {
    EXPECT_TRUE(client.wait_for_drop());
  }
  const auto stats = collector.stats();
  EXPECT_EQ(stats.deadline_drops, 1u);
  EXPECT_EQ(stats.frame_errors, 0u);
  collector.stop();
}

/// Reply-path partial-send regression: a peer floods heartbeats without
/// reading a single ack (tiny receive buffer), forcing the reactor's
/// non-blocking reply path through partial send()s and EPOLLOUT resumes.
/// When the peer finally drains, every ack must arrive intact and in
/// order — none lost, none corrupted, connection still alive.
TEST(ReactorFraming, AckBackpressureSurvivesPartialWrites) {
  CollectorConfig config = reactor_config();
  config.idle_timeout_ms = 0;
  config.frame_deadline_ms = 0;
  Collector collector(config);
  collector.start();

  RawClient client(collector.port(), /*timeout_ms=*/5000);
  ASSERT_TRUE(client.ok());
  // Shrink our receive window so the collector's sends hit EAGAIN fast.
  const int tiny = 2048;
  ::setsockopt(client.socket->fd(), SOL_SOCKET, SO_RCVBUF, &tiny,
               sizeof tiny);

  ASSERT_TRUE(client.send(hello_frame(6)));
  ASSERT_TRUE(client.read_ack().has_value());

  Heartbeat beat;
  beat.site_id = 6;
  const std::string frame = encode_frame(MsgType::kHeartbeat, beat.encode());
  constexpr int kFloods = 2000;
  std::string flood;
  flood.reserve(frame.size() * kFloods);
  for (int i = 0; i < kFloods; ++i) flood += frame;
  ASSERT_TRUE(client.send(flood));  // no reads until the whole flood is sent

  // Now drain: exactly kFloods acks (v3 heartbeats are acked), all valid.
  for (int i = 0; i < kFloods; ++i) {
    auto ack = client.read_ack();
    ASSERT_TRUE(ack.has_value()) << "ack " << i << " lost under backpressure";
    EXPECT_EQ(ack->epoch, 0u);
  }
  // The connection survived; a delta still works.
  ASSERT_TRUE(client.send(delta_frame(6, 1)));
  auto ack = client.read_ack();
  ASSERT_TRUE(ack.has_value());
  EXPECT_EQ(ack->epoch, 1u);
  const auto stats = collector.stats();
  EXPECT_EQ(stats.frame_errors, 0u);
  collector.stop();
}

}  // namespace
}  // namespace dcs::service
