// Tests for ConcurrentMonitor: multi-threaded ingest must produce exactly
// the sketch a serial run produces (linearity makes update order
// irrelevant), under contention and with interleaved deletions.
#include "distributed/concurrent_monitor.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <span>
#include <thread>
#include <vector>

#include "stream/generator.hpp"

namespace dcs {
namespace {

DcsParams params_with_seed(std::uint64_t seed) {
  DcsParams params;
  params.num_tables = 3;
  params.buckets_per_table = 64;
  params.seed = seed;
  return params;
}

TEST(Concurrent, RejectsZeroStripes) {
  EXPECT_THROW(ConcurrentMonitor(params_with_seed(1), 0),
               std::invalid_argument);
}

TEST(Concurrent, SingleThreadMatchesPlainSketch) {
  const DcsParams params = params_with_seed(3);
  ConcurrentMonitor monitor(params, 4);
  DistinctCountSketch reference(params);
  ZipfWorkloadConfig config;
  config.u_pairs = 10'000;
  config.num_destinations = 100;
  config.churn = 1;
  const ZipfWorkload workload(config);
  for (const FlowUpdate& u : workload.updates()) {
    monitor.update(u.dest, u.source, u.delta);
    reference.update(u.dest, u.source, u.delta);
  }
  EXPECT_TRUE(monitor.snapshot() == reference);
}

TEST(Concurrent, ParallelIngestMatchesSerialReference) {
  const DcsParams params = params_with_seed(5);
  ZipfWorkloadConfig config;
  config.u_pairs = 40'000;
  config.num_destinations = 500;
  config.skew = 1.5;
  config.churn = 1;  // deletions in flight too
  const ZipfWorkload workload(config);
  const auto& updates = workload.updates();

  DistinctCountSketch reference(params);
  for (const FlowUpdate& u : updates)
    reference.update(u.dest, u.source, u.delta);

  for (const int num_threads : {2, 4, 8}) {
    ConcurrentMonitor monitor(params, 8);
    std::vector<std::thread> threads;
    std::atomic<std::size_t> cursor{0};
    for (int t = 0; t < num_threads; ++t) {
      threads.emplace_back([&] {
        for (;;) {
          const std::size_t i = cursor.fetch_add(1);
          if (i >= updates.size()) return;
          monitor.update(updates[i].dest, updates[i].source, updates[i].delta);
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
    EXPECT_TRUE(monitor.snapshot() == reference)
        << num_threads << " threads diverged from the serial run";
  }
}

TEST(Concurrent, SnapshotDuringWritesIsWellFormed) {
  // Readers racing with writers must always observe a structurally valid
  // sketch (each stripe is merged under its lock).
  const DcsParams params = params_with_seed(7);
  ConcurrentMonitor monitor(params, 4);
  std::atomic<bool> stop{false};

  std::thread writer([&] {
    Xoshiro256 rng(9);
    while (!stop.load(std::memory_order_relaxed)) {
      monitor.update(static_cast<Addr>(rng.bounded(100)),
                     static_cast<Addr>(rng()), +1);
    }
  });
  for (int i = 0; i < 50; ++i) {
    const DistinctCountSketch snap = monitor.snapshot();
    EXPECT_TRUE(snap.validate());
  }
  stop.store(true);
  writer.join();
}

TEST(Concurrent, TrackingSnapshotAnswersQueries) {
  const DcsParams params = params_with_seed(11);
  ConcurrentMonitor monitor(params, 4);
  for (Addr dest = 1; dest <= 3; ++dest)
    for (Addr source = 0; source < dest * 100; ++source)
      monitor.update(dest, source, +1);
  const TrackingDcs tracking = monitor.snapshot_tracking();
  const auto top = tracking.top_k(1).entries;
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].group, 3u);
  EXPECT_TRUE(tracking.check_invariants());
}

TEST(Concurrent, PipelinedFlushDrainsQueues) {
  const DcsParams params = params_with_seed(17);
  ConcurrentMonitor monitor(params, 2, /*queue_capacity=*/128);
  EXPECT_EQ(monitor.queue_capacity(), 128u);
  DistinctCountSketch reference(params);
  for (Addr i = 0; i < 50; ++i) {  // fewer than one queue's worth
    monitor.update(i % 5, i, +1);
    reference.update(i % 5, i, +1);
  }
  EXPECT_EQ(monitor.pending_updates(), 50u);
  monitor.flush();
  EXPECT_EQ(monitor.pending_updates(), 0u);
  EXPECT_TRUE(monitor.snapshot() == reference);
}

TEST(Concurrent, PipelinedSnapshotSeesEnqueuedUpdates) {
  // A query must not miss updates still sitting in the batch queues:
  // snapshot() drains before merging.
  const DcsParams params = params_with_seed(19);
  ConcurrentMonitor monitor(params, 2, /*queue_capacity=*/1024);
  DistinctCountSketch reference(params);
  for (Addr i = 0; i < 200; ++i) {
    monitor.update(1, i, +1);
    reference.update(1, i, +1);
  }
  EXPECT_GT(monitor.pending_updates(), 0u);
  EXPECT_TRUE(monitor.snapshot() == reference);
}

TEST(Concurrent, PipelinedParallelIngestWithRacingSnapshots) {
  // The TSan hammer: several writer threads feed the pipelined queues while
  // a reader takes consistent-cut snapshots; every snapshot must be
  // structurally valid and the final state must equal the serial reference.
  const DcsParams params = params_with_seed(23);
  ZipfWorkloadConfig config;
  config.u_pairs = 30'000;
  config.num_destinations = 300;
  config.skew = 1.4;
  config.churn = 1;
  const ZipfWorkload workload(config);
  const auto& updates = workload.updates();

  DistinctCountSketch reference(params);
  for (const FlowUpdate& u : updates)
    reference.update(u.dest, u.source, u.delta);

  ConcurrentMonitor monitor(params, 4, /*queue_capacity=*/256);
  std::atomic<std::size_t> cursor{0};
  std::atomic<bool> done{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      for (;;) {
        const std::size_t i = cursor.fetch_add(1);
        if (i >= updates.size()) return;
        monitor.update(updates[i].dest, updates[i].source, updates[i].delta);
      }
    });
  }
  std::thread reader([&] {
    // Exercise the read path under contention. Mid-run snapshots of a
    // *churned* stream are not validate()-clean: a delete claimed by one
    // writer thread can land before its matching insert claimed by another,
    // transiently leaving net-negative pairs. Linearity guarantees the final
    // state regardless; the equality check below is the real invariant.
    std::uint64_t sink = 0;
    while (!done.load(std::memory_order_relaxed))
      sink ^= monitor.snapshot().estimate_distinct_pairs();
    (void)sink;
  });
  for (std::thread& writer : writers) writer.join();
  done.store(true);
  reader.join();
  EXPECT_TRUE(monitor.snapshot() == reference)
      << "pipelined parallel ingest diverged from the serial run";
}

TEST(Concurrent, UpdateBatchMatchesElementwise) {
  const DcsParams params = params_with_seed(29);
  ZipfWorkloadConfig config;
  config.u_pairs = 20'000;
  config.num_destinations = 200;
  config.churn = 1;
  const ZipfWorkload workload(config);
  const auto& updates = workload.updates();

  ConcurrentMonitor elementwise(params, 4);
  for (const FlowUpdate& u : updates)
    elementwise.update(u.dest, u.source, u.delta);
  ConcurrentMonitor batched(params, 4);
  const std::span<const FlowUpdate> all(updates);
  for (std::size_t i = 0; i < all.size(); i += 777)
    batched.update_batch(all.subspan(i, std::min<std::size_t>(777, all.size() - i)));
  EXPECT_TRUE(batched.snapshot() == elementwise.snapshot());
}

TEST(Concurrent, MemoryAccountsAllStripes) {
  const DcsParams params = params_with_seed(13);
  ConcurrentMonitor monitor(params, 3);
  const std::size_t before = monitor.memory_bytes();
  for (Addr i = 0; i < 1000; ++i) monitor.update(i % 7, i, +1);
  EXPECT_GT(monitor.memory_bytes(), before);
}

}  // namespace
}  // namespace dcs
