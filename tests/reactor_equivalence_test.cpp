// Differential equivalence: the epoll reactor ingest path vs the threaded
// thread-per-connection oracle (PR 3), both vs the single-sketch reference.
//
// Sketch linearity makes merge order irrelevant, so every sketch-derived
// answer — the merged sketch bytes, top-k, per-group frequencies, the
// distinct-pairs estimate — and every per-site epoch watermark must be
// BIT-IDENTICAL no matter which transport carried the deltas or how they
// interleaved. An N-agent scenario grid is shipped through both modes and
// compared answer by answer; a second battery drives the reactor with raw
// sockets to pin the protocol behaviours (dedup acks, gap accounting,
// version-gated heartbeat acks) that the grid can't observe from outside.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "service/agent.hpp"
#include "service/collector.hpp"
#include "service/socket.hpp"
#include "service/wire.hpp"
#include "sketch/tracking_dcs.hpp"
#include "stream/generator.hpp"

namespace dcs::service {
namespace {

DcsParams small_params() {
  DcsParams params;
  params.num_tables = 3;
  params.buckets_per_table = 64;
  params.seed = 17;
  return params;
}

CollectorConfig collector_config(bool use_reactor, int workers = 2) {
  CollectorConfig config;
  config.params = small_params();
  config.io_timeout_ms = 50;  // keep stop() fast in tests
  config.use_reactor = use_reactor;
  config.reactor_workers = workers;
  return config;
}

SiteAgentConfig agent_config(std::uint64_t site_id, std::uint16_t port) {
  SiteAgentConfig config;
  config.site_id = site_id;
  config.collector_port = port;
  config.params = small_params();
  config.epoch_updates = 500;
  config.backoff_initial_ms = 10;
  config.backoff_max_ms = 100;
  config.io_timeout_ms = 1000;
  config.jitter_seed = site_id;
  return config;
}

std::vector<FlowUpdate> zipf_updates(std::uint64_t pairs, std::uint64_t seed) {
  ZipfWorkloadConfig config;
  config.u_pairs = pairs;
  config.num_destinations = 40;
  config.skew = 1.3;
  config.seed = seed;
  return ZipfWorkload(config).updates();
}

std::string sketch_bytes(const DistinctCountSketch& sketch) {
  std::ostringstream out(std::ios::binary);
  BinaryWriter writer(out);
  sketch.serialize(writer);
  return std::move(out).str();
}

/// Everything an ingest path answers, captured after all deltas merged.
struct IngestOutcome {
  std::string sketch;  ///< serialized merged sketch — the bit-identity probe
  std::vector<std::pair<Addr, std::uint64_t>> top_k;
  std::vector<std::uint64_t> frequencies;  ///< per scenario destination
  std::uint64_t distinct_pairs = 0;
  std::map<std::uint64_t, std::uint64_t> watermarks;  ///< site -> last epoch
  std::uint64_t deltas_merged = 0;
  std::uint64_t frame_errors = 0;
  std::uint64_t dropped_epochs = 0;
};

/// Ship `all` split across `sites` agents through one collector config and
/// collect its answers. Agents run concurrently, so the wire interleaving
/// differs run to run — exactly what the equivalence claim must survive.
IngestOutcome run_scenario(const CollectorConfig& collector_config,
                           int sites, const std::vector<FlowUpdate>& all) {
  Collector collector(collector_config);
  collector.start();

  const std::size_t share = all.size() / static_cast<std::size_t>(sites);
  std::uint64_t total_epochs = 0;
  std::vector<std::thread> threads;
  for (int site = 0; site < sites; ++site) {
    const std::size_t begin = static_cast<std::size_t>(site) * share;
    const std::size_t end =
        site == sites - 1 ? all.size() : begin + share;
    threads.emplace_back([&collector, &all, begin, end, site] {
      SiteAgent agent(agent_config(static_cast<std::uint64_t>(site + 1),
                                   collector.port()));
      agent.start();
      for (std::size_t i = begin; i < end; ++i) agent.ingest(all[i]);
      EXPECT_TRUE(agent.flush(15000));
      agent.stop();
    });
    total_epochs += (end - begin + 499) / 500;
  }
  for (auto& thread : threads) thread.join();
  EXPECT_TRUE(collector.wait_for_deltas(total_epochs, 15000));

  IngestOutcome outcome;
  outcome.sketch = sketch_bytes(collector.merged_sketch());
  for (const auto& entry : collector.top_k(10).entries)
    outcome.top_k.emplace_back(entry.group, entry.estimate);
  for (Addr dest = 0; dest < 40; ++dest)
    outcome.frequencies.push_back(collector.estimate_frequency(dest));
  const QueryPublishState published = collector.query_publish_state(10);
  outcome.distinct_pairs = published.distinct_pairs;
  for (const auto& site : collector.site_stats())
    outcome.watermarks[site.site_id] = site.last_epoch;
  const auto stats = collector.stats();
  outcome.deltas_merged = stats.deltas_merged;
  outcome.frame_errors = stats.frame_errors;
  outcome.dropped_epochs = stats.dropped_epochs;
  collector.stop();
  return outcome;
}

/// Reference answers from one local sketch over the concatenated stream.
IngestOutcome reference_outcome(const std::vector<FlowUpdate>& all, int sites,
                                std::size_t epoch_updates = 500) {
  DistinctCountSketch reference(small_params());
  for (const auto& update : all)
    reference.update(update.dest, update.source, update.delta);
  IngestOutcome outcome;
  outcome.sketch = sketch_bytes(reference);
  const TrackingDcs tracking(reference);
  for (const auto& entry : tracking.top_k(10).entries)
    outcome.top_k.emplace_back(entry.group, entry.estimate);
  for (Addr dest = 0; dest < 40; ++dest)
    outcome.frequencies.push_back(tracking.estimate_frequency(dest));
  outcome.distinct_pairs = tracking.estimate_distinct_pairs();
  const std::size_t share = all.size() / static_cast<std::size_t>(sites);
  std::uint64_t total_epochs = 0;
  for (int site = 0; site < sites; ++site) {
    const std::size_t begin = static_cast<std::size_t>(site) * share;
    const std::size_t end = site == sites - 1 ? all.size() : begin + share;
    const std::uint64_t epochs =
        (end - begin + epoch_updates - 1) / epoch_updates;
    outcome.watermarks[static_cast<std::uint64_t>(site + 1)] = epochs;
    total_epochs += epochs;
  }
  outcome.deltas_merged = total_epochs;
  return outcome;
}

void expect_identical(const IngestOutcome& got, const IngestOutcome& want,
                      const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(got.sketch, want.sketch) << "merged sketch bytes diverged";
  EXPECT_EQ(got.top_k, want.top_k);
  EXPECT_EQ(got.frequencies, want.frequencies);
  EXPECT_EQ(got.distinct_pairs, want.distinct_pairs);
  EXPECT_EQ(got.watermarks, want.watermarks);
  EXPECT_EQ(got.deltas_merged, want.deltas_merged);
  EXPECT_EQ(got.frame_errors, 0u);
  EXPECT_EQ(got.dropped_epochs, 0u);
}

// --- the differential grid --------------------------------------------------

/// N agents x workload scenarios through BOTH ingest paths: every answer the
/// collector can give must be bit-identical across threaded mode, reactor
/// mode, and the single-sketch reference.
TEST(ReactorEquivalence, ScenarioGridMatchesThreadedOracleBitForBit) {
  struct Scenario {
    int sites;
    std::uint64_t pairs;
    std::uint64_t seed;
  };
  const Scenario grid[] = {
      {1, 2000, 11},  // single site: pure transport difference
      {4, 6000, 99},  // the PR 3 acceptance scenario
      {6, 6600, 42},  // uneven split (6600/6 = 1100 -> 3 epochs each)
  };
  for (const Scenario& scenario : grid) {
    const auto updates = zipf_updates(scenario.pairs, scenario.seed);
    const IngestOutcome reference =
        reference_outcome(updates, scenario.sites);
    const IngestOutcome threaded = run_scenario(
        collector_config(/*use_reactor=*/false), scenario.sites, updates);
    const IngestOutcome reactor = run_scenario(
        collector_config(/*use_reactor=*/true), scenario.sites, updates);
    const std::string label = "sites=" + std::to_string(scenario.sites) +
                              " pairs=" + std::to_string(scenario.pairs);
    expect_identical(threaded, reference, "threaded vs reference " + label);
    expect_identical(reactor, reference, "reactor vs reference " + label);
    expect_identical(reactor, threaded, "reactor vs threaded " + label);
  }
}

/// Worker-pool width must not leak into answers: 1 worker (fully serial)
/// and 4 workers (connections spread across epoll loops) give the same
/// bits.
TEST(ReactorEquivalence, WorkerCountDoesNotChangeAnswers) {
  const auto updates = zipf_updates(4000, 7);
  const IngestOutcome reference = reference_outcome(updates, 4);
  const IngestOutcome one = run_scenario(
      collector_config(/*use_reactor=*/true, /*workers=*/1), 4, updates);
  const IngestOutcome four = run_scenario(
      collector_config(/*use_reactor=*/true, /*workers=*/4), 4, updates);
  expect_identical(one, reference, "1 worker vs reference");
  expect_identical(four, reference, "4 workers vs reference");
  expect_identical(four, one, "4 workers vs 1 worker");
}

// --- protocol parity at the wire level --------------------------------------

struct RawClient {
  std::optional<TcpSocket> socket;
  FrameDecoder decoder;
  char buffer[4096];

  explicit RawClient(std::uint16_t port) {
    socket = tcp_connect("127.0.0.1", port, 1000);
    if (socket) socket->set_timeouts(3000, 3000);
  }
  bool ok() const { return socket.has_value(); }
  bool send(const std::string& bytes) { return socket->send_all(bytes); }
  std::optional<Ack> read_ack() {
    for (;;) {
      if (auto frame = decoder.next()) {
        EXPECT_EQ(frame->type, MsgType::kAck);
        return Ack::decode(frame->payload, frame->version);
      }
      const RecvResult got = socket->recv_some(buffer, sizeof buffer);
      if (got.bytes == 0) return std::nullopt;
      decoder.feed(buffer, got.bytes);
    }
  }
  /// Wait for the collector to drop us (EOF/reset), bounded.
  bool wait_for_drop() {
    for (int i = 0; i < 100; ++i) {
      const RecvResult got = socket->recv_some(buffer, sizeof buffer);
      if (got.closed || got.error) return true;
      if (got.timed_out) return false;
    }
    return false;
  }
};

std::string delta_frame(std::uint64_t site, std::uint64_t epoch,
                        std::uint8_t version = kWireVersion) {
  DistinctCountSketch sketch(small_params());
  sketch.update(static_cast<Addr>(epoch), static_cast<Addr>(site * 100), +1);
  SnapshotDelta delta;
  delta.site_id = site;
  delta.epoch = epoch;
  delta.updates = 1;
  delta.sketch_blob = sketch_bytes(sketch);
  return encode_frame(MsgType::kSnapshotDelta, delta.encode(version), version);
}

std::string hello_frame(std::uint64_t site, std::uint64_t first_epoch = 1,
                        std::uint8_t version = kWireVersion) {
  Hello hello;
  hello.site_id = site;
  hello.params_fingerprint = small_params().fingerprint();
  hello.first_epoch = first_epoch;
  return encode_frame(MsgType::kHello, hello.encode(version), version);
}

/// The exactly-once contract on the reactor path: a retransmitted epoch is
/// acked kDuplicate and merged once.
TEST(ReactorEquivalence, DuplicateDeltaAckedAsDuplicate) {
  CollectorConfig config = collector_config(/*use_reactor=*/true);
  config.run_detection = false;
  Collector collector(config);
  collector.start();

  RawClient client(collector.port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client.send(hello_frame(5)));
  auto hello_ack = client.read_ack();
  ASSERT_TRUE(hello_ack.has_value());
  EXPECT_EQ(hello_ack->status, AckStatus::kOk);

  const std::string frame = delta_frame(5, 1);
  ASSERT_TRUE(client.send(frame));
  auto first = client.read_ack();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->status, AckStatus::kOk);
  EXPECT_EQ(first->epoch, 1u);
  ASSERT_TRUE(client.send(frame));  // identical retransmit
  auto second = client.read_ack();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->status, AckStatus::kDuplicate);

  const auto stats = collector.stats();
  EXPECT_EQ(stats.deltas_merged, 1u);
  EXPECT_EQ(stats.duplicate_deltas, 1u);
  collector.stop();
}

/// Hello-resume gap accounting: a site resuming above last_epoch+1 gets the
/// gap counted as dropped epochs, same as the threaded path.
TEST(ReactorEquivalence, HelloResumeGapIsAccounted) {
  CollectorConfig config = collector_config(/*use_reactor=*/true);
  config.run_detection = false;
  Collector collector(config);
  collector.start();

  {
    RawClient client(collector.port());
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE(client.send(hello_frame(9)));
    ASSERT_TRUE(client.read_ack().has_value());
    ASSERT_TRUE(client.send(delta_frame(9, 1)));
    ASSERT_TRUE(client.read_ack().has_value());
  }
  // Restarted site lost epochs 2-4; resumes at 5.
  RawClient client(collector.port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client.send(hello_frame(9, /*first_epoch=*/5)));
  auto ack = client.read_ack();
  ASSERT_TRUE(ack.has_value());
  EXPECT_EQ(ack->status, AckStatus::kOk);
  EXPECT_EQ(ack->epoch, 4u);  // resume watermark advanced past the gap

  const auto sites = collector.site_stats();
  ASSERT_EQ(sites.size(), 1u);
  EXPECT_EQ(sites[0].dropped_epochs, 3u);
  collector.stop();
}

/// Heartbeat acks are gated on the negotiated version on the reactor path
/// too: a v3 site gets an ack per heartbeat, a v2 site gets none (an ack
/// would desync its request/response stream).
TEST(ReactorEquivalence, HeartbeatAckGatedOnNegotiatedVersion) {
  CollectorConfig config = collector_config(/*use_reactor=*/true);
  config.run_detection = false;
  Collector collector(config);
  collector.start();

  {
    RawClient v3(collector.port());
    ASSERT_TRUE(v3.ok());
    ASSERT_TRUE(v3.send(hello_frame(1)));
    ASSERT_TRUE(v3.read_ack().has_value());
    Heartbeat beat;
    beat.site_id = 1;
    ASSERT_TRUE(v3.send(encode_frame(MsgType::kHeartbeat, beat.encode())));
    auto ack = v3.read_ack();
    ASSERT_TRUE(ack.has_value());
    EXPECT_EQ(ack->epoch, 0u);
  }
  {
    RawClient v2(collector.port());
    ASSERT_TRUE(v2.ok());
    ASSERT_TRUE(v2.send(hello_frame(2, 1, /*version=*/2)));
    ASSERT_TRUE(v2.read_ack().has_value());
    Heartbeat beat;
    beat.site_id = 2;
    ASSERT_TRUE(
        v2.send(encode_frame(MsgType::kHeartbeat, beat.encode(), 2)));
    // No heartbeat ack may arrive: the next ack must belong to the delta.
    ASSERT_TRUE(v2.send(delta_frame(2, 1, /*version=*/2)));
    auto ack = v2.read_ack();
    ASSERT_TRUE(ack.has_value());
    EXPECT_EQ(ack->epoch, 1u);
    EXPECT_EQ(ack->status, AckStatus::kOk);
  }
  collector.stop();
}

/// Protocol-order violation on the reactor path: a delta before Hello is a
/// WireError — connection dropped, frame_errors bumped, nothing merged.
TEST(ReactorEquivalence, DeltaBeforeHelloDropsConnection) {
  CollectorConfig config = collector_config(/*use_reactor=*/true);
  config.run_detection = false;
  Collector collector(config);
  collector.start();

  RawClient client(collector.port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client.send(delta_frame(3, 1)));
  EXPECT_TRUE(client.wait_for_drop());

  EXPECT_TRUE(collector.wait_for_byes(0, 10));  // settle
  const auto stats = collector.stats();
  EXPECT_EQ(stats.frame_errors, 1u);
  EXPECT_EQ(stats.deltas_merged, 0u);
  collector.stop();
}

}  // namespace
}  // namespace dcs::service
