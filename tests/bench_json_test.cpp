// The BENCH json layer is the contract between every benchmark binary and
// scripts/bench_runner.py: these tests pin the escaping, filename, ordering
// and clamping rules the runner depends on, including a real round-trip
// through Python's json parser when a python3 is on PATH.
#include "common/bench_report.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace dcs::bench {
namespace {

TEST(JsonEscape, PassesPlainTextThrough) {
  EXPECT_EQ(json_escape("pipeline_throughput"), "pipeline_throughput");
  EXPECT_EQ(json_escape(""), "");
}

TEST(JsonEscape, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape("\b\f\r"), "\\b\\f\\r");
  // Other control bytes become \u00XX.
  EXPECT_EQ(json_escape(std::string_view("\x01", 1)), "\\u0001");
  EXPECT_EQ(json_escape(std::string_view("\x1f", 1)), "\\u001f");
}

TEST(JsonReport, RunIdComesFromEnvironment) {
  ::setenv("DCS_RUN_ID", "2026-08-08-ci", 1);
  JsonReport from_env("envtest");
  ::unsetenv("DCS_RUN_ID");
  EXPECT_EQ(from_env.run_id(), "2026-08-08-ci");

  // Without the env var the ctor falls back to a local date: YYYY-MM-DD.
  JsonReport fallback("envtest");
  EXPECT_EQ(fallback.run_id().size(), 10u);
  EXPECT_EQ(fallback.run_id()[4], '-');
  EXPECT_EQ(fallback.run_id()[7], '-');

  // set_run_id overrides; empty keeps the current id.
  JsonReport overridden("envtest");
  overridden.set_run_id("manual");
  EXPECT_EQ(overridden.run_id(), "manual");
  overridden.set_run_id("");
  EXPECT_EQ(overridden.run_id(), "manual");
}

TEST(JsonReport, FilenameCarriesBenchNameSoSameDayRunsCannotClobber) {
  JsonReport a("window_costs");
  JsonReport b("distributed_costs");
  a.set_run_id("2026-08-08");
  b.set_run_id("2026-08-08");
  EXPECT_EQ(a.filename(), "BENCH_2026-08-08_window_costs.json");
  EXPECT_EQ(b.filename(), "BENCH_2026-08-08_distributed_costs.json");
  EXPECT_NE(a.filename(), b.filename());
}

TEST(JsonReport, FilenameSanitizesHostileNames) {
  JsonReport report("weird bench/../name");
  report.set_run_id("run\"id\n");
  const std::string name = report.filename();
  EXPECT_EQ(name.find('/'), std::string::npos);
  EXPECT_EQ(name.find('"'), std::string::npos);
  EXPECT_EQ(name.find('\n'), std::string::npos);
  EXPECT_EQ(name, "BENCH_run-id-_weird-bench-..-name.json");
}

TEST(JsonReport, PreservesInsertionOrderAndOverwritesInPlace) {
  JsonReport report("order");
  report.set_run_id("r");
  report.value("zulu", "second", 2.0);
  report.value("alpha", "first", 1.0);
  report.value("zulu", "third", 3.0);
  report.value("zulu", "second", 22.0);  // overwrite, not append
  const std::string out = report.render();

  // Section order is first-insertion order, not alphabetical.
  EXPECT_LT(out.find("\"zulu\""), out.find("\"alpha\""));
  EXPECT_LT(out.find("\"second\""), out.find("\"third\""));
  // The overwrite replaced the value and did not duplicate the key.
  EXPECT_EQ(out.find("\"second\""), out.rfind("\"second\""));
  EXPECT_NE(out.find("22"), std::string::npos);
}

TEST(JsonReport, ClampsNonFiniteValuesToZero) {
  JsonReport report("clamp");
  report.set_run_id("r");
  MetricValue v;
  v.value = std::numeric_limits<double>::quiet_NaN();
  v.dir = Direction::kLowerIsBetter;
  report.metric("s", "nan_value", v);
  v.value = std::numeric_limits<double>::infinity();
  report.metric("s", "inf_value", v);
  const std::string out = report.render();
  // JSON has no NaN/Infinity literals; both clamp to 0. (The metric keys
  // themselves contain "nan"/"inf", so check the rendered numbers.)
  EXPECT_EQ(out.find(": nan"), std::string::npos);
  EXPECT_EQ(out.find(": inf"), std::string::npos);
  EXPECT_EQ(out.find(": -nan"), std::string::npos);
  EXPECT_NE(out.find("\"nan_value\": {\"value\": 0"), std::string::npos);
  EXPECT_NE(out.find("\"inf_value\": {\"value\": 0"), std::string::npos);
}

TEST(JsonReport, OmitsUnsetOptionalFields) {
  JsonReport report("optional");
  report.set_run_id("r");
  report.value("s", "plain", 1.0);
  const std::string out = report.render();
  EXPECT_EQ(out.find("noise_pct"), std::string::npos);
  EXPECT_EQ(out.find("\"count\""), std::string::npos);
  EXPECT_EQ(out.find("p50"), std::string::npos);
  EXPECT_EQ(out.find("deterministic"), std::string::npos);

  MetricValue v;
  v.value = 2.0;
  v.dir = Direction::kHigherIsBetter;
  v.noise_pct = 7.5;
  v.count = 3;
  v.p50 = 1.0;
  v.deterministic = true;
  report.metric("s", "rich", v);
  const std::string out2 = report.render();
  EXPECT_NE(out2.find("\"noise_pct\": 7.5"), std::string::npos);
  EXPECT_NE(out2.find("\"count\": 3"), std::string::npos);
  EXPECT_NE(out2.find("\"p50\": 1"), std::string::npos);
  EXPECT_NE(out2.find("\"deterministic\": true"), std::string::npos);
}

TEST(JsonReport, MetadataBlockCarriesMachineAndBuildConfig) {
  JsonReport report("meta");
  report.set_run_id("r");
  report.meta("runs", 5.0);
  const std::string out = report.render();
  EXPECT_NE(out.find("\"schema\": 2"), std::string::npos);
  EXPECT_NE(out.find("\"bench\": \"meta\""), std::string::npos);
  EXPECT_NE(out.find("\"run_id\": \"r\""), std::string::npos);
  for (const char* key :
       {"\"cpu\"", "\"cores\"", "\"compiler\"", "\"build_type\"",
        "\"git_sha\"", "\"full\"", "\"runs\""}) {
    EXPECT_NE(out.find(key), std::string::npos) << key;
  }
  // meta() overwrites by key rather than appending duplicates.
  report.meta("runs", 9.0);
  const std::string out2 = report.render();
  EXPECT_EQ(out2.find("\"runs\""), out2.rfind("\"runs\""));
  EXPECT_NE(out2.find("\"runs\": 9"), std::string::npos);
}

// The acceptance bar: a report stuffed with hostile section/key/meta names
// must still parse with Python's json module. Skipped when no python3 is
// available on the test host.
TEST(JsonReport, HostileNamesSurvivePythonRoundTrip) {
  if (std::system("python3 -c 'pass' >/dev/null 2>&1") != 0)
    GTEST_SKIP() << "python3 not available";

  JsonReport report("evil \"bench\"\nname\\");
  report.set_run_id("run\t\"id\"");
  report.meta("path\\with\"quotes", std::string("va\nlue"));
  MetricValue v;
  v.value = 1.5;
  v.dir = Direction::kHigherIsBetter;
  report.metric("sec\"tion\n", "key\\\"\x01", v);

  const std::string dir = ::testing::TempDir();
  const std::string json_path = dir + "/bench_json_test_hostile.json";
  {
    std::ofstream out(json_path, std::ios::binary);
    out << report.render();
  }
  const std::string cmd =
      "python3 -c \"import json,sys; json.load(open(sys.argv[1]))\" '" +
      json_path + "'";
  EXPECT_EQ(std::system(cmd.c_str()), 0) << report.render();
  std::remove(json_path.c_str());
}

TEST(JsonReport, WriteUsesAtomicFileAndReturnsPath) {
  JsonReport report("write_test");
  report.set_run_id("unit");
  report.value("s", "k", 1.0);
  const std::string dir = ::testing::TempDir();
  const std::string path = report.write(dir);
  EXPECT_NE(path.find("BENCH_unit_write_test.json"), std::string::npos);
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), report.render());
  std::remove(path.c_str());

  // Unwritable directory: write() must throw, never silently drop data.
  EXPECT_THROW(report.write("/nonexistent-dcs-dir"), std::exception);
}

}  // namespace
}  // namespace dcs::bench
