// Integration tests: the full pipeline — scenarios -> exporter -> sketches /
// monitor / baselines — and cross-module consistency checks.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "baselines/exact_tracker.hpp"
#include "baselines/syn_fin_cusum.hpp"
#include "detection/ddos_monitor.hpp"
#include "distributed/sharded_monitor.hpp"
#include "metrics/accuracy.hpp"
#include "net/exporter.hpp"
#include "net/scenarios.hpp"
#include "sim/agents.hpp"
#include "sim/simulator.hpp"
#include "sim/topology.hpp"
#include "sketch/tracking_dcs.hpp"
#include "stream/generator.hpp"
#include "stream/trace_io.hpp"

namespace dcs {
namespace {

TEST(Integration, SketchTracksExactThroughAttackPipeline) {
  Timeline timeline(11);
  BackgroundTrafficConfig background;
  background.sessions = 5000;
  add_background_traffic(timeline, background);
  SynFloodConfig flood;
  flood.spoofed_sources = 8000;
  add_syn_flood(timeline, flood);
  SynFloodConfig flood2;
  flood2.victim = 0x0a0000aa;
  flood2.spoofed_sources = 3000;
  flood2.spoof_seed = 123;
  add_syn_flood(timeline, flood2);

  FlowUpdateExporter exporter;
  const auto updates = exporter.run(timeline.finalize());

  DcsParams params;
  params.seed = 31;
  TrackingDcs tracker(params);
  ExactTracker exact;
  for (const FlowUpdate& u : updates) {
    tracker.update(u.dest, u.source, u.delta);
    exact.update(u.dest, u.source, u.delta);
  }

  // The two flood victims dominate and must be the estimated top-2.
  const auto approx = tracker.top_k(2).entries;
  ASSERT_EQ(approx.size(), 2u);
  EXPECT_EQ(approx[0].group, flood.victim);
  EXPECT_EQ(approx[1].group, flood2.victim);

  // Estimates within a generous band of the exact frequencies.
  EXPECT_NEAR(static_cast<double>(approx[0].estimate),
              static_cast<double>(exact.frequency(flood.victim)),
              0.6 * static_cast<double>(exact.frequency(flood.victim)));
}

TEST(Integration, CusumAndSketchAgreeOnFlood) {
  // The local SYN-FIN detector sees "an attack is happening"; the sketch
  // names the victim. Both must fire on the same composed stream.
  Timeline timeline(12);
  BackgroundTrafficConfig background;
  background.sessions = 4000;
  background.duration_ticks = 40'000;
  add_background_traffic(timeline, background);
  SynFloodConfig flood;
  flood.spoofed_sources = 20'000;
  flood.start_tick = 45'000;
  flood.duration_ticks = 20'000;
  add_syn_flood(timeline, flood);

  FlowUpdateExporter exporter(5000);
  ExactTracker exact;
  for (const Packet& packet : timeline.finalize())
    exporter.observe(packet, [&exact](const FlowUpdate& u) {
      exact.update(u.dest, u.source, u.delta);
    });
  exporter.finish_interval();

  SynFinCusum cusum(0.5, 3.0);
  bool alarmed = false;
  for (const IntervalCounts& interval : exporter.intervals())
    alarmed = cusum.observe(interval.syn, interval.fin) || alarmed;
  EXPECT_TRUE(alarmed);

  const auto top = exact.top_k(1).entries;
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].group, flood.victim);
}

TEST(Integration, TraceFileReplayReproducesSketch) {
  // Write a workload to a trace file, re-read it, rebuild the sketch: must be
  // bit-identical (persistence + replay path).
  ZipfWorkloadConfig config;
  config.u_pairs = 10'000;
  config.num_destinations = 100;
  config.churn = 1;
  const ZipfWorkload workload(config);

  std::stringstream file;
  write_trace(file, workload.updates());
  const auto replayed = read_trace(file);

  DcsParams params;
  params.seed = 17;
  DistinctCountSketch original(params), rebuilt(params);
  for (const FlowUpdate& u : workload.updates())
    original.update(u.dest, u.source, u.delta);
  for (const FlowUpdate& u : replayed) rebuilt.update(u.dest, u.source, u.delta);
  EXPECT_TRUE(original == rebuilt);
}

TEST(Integration, DistributedMonitorDetectsAttackAtCollector) {
  // Eight routers each see a slice of the traffic; only the merged view can
  // name the victim.
  Timeline timeline(13);
  SynFloodConfig flood;
  flood.spoofed_sources = 6000;
  add_syn_flood(timeline, flood);
  BackgroundTrafficConfig background;
  background.sessions = 4000;
  add_background_traffic(timeline, background);

  FlowUpdateExporter exporter;
  const auto updates = exporter.run(timeline.finalize());

  DcsParams params;
  params.seed = 3;
  ShardedMonitor sharded(params, 8);
  for (const FlowUpdate& u : updates) sharded.update(u.dest, u.source, u.delta);

  const TrackingDcs collected = sharded.collect_tracking();
  const auto top = collected.top_k(1).entries;
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].group, flood.victim);
}

TEST(Integration, AccuracyImprovesWithSketchWidth) {
  // Ablation invariant: quadrupling s should not worsen top-10 recall.
  ZipfWorkloadConfig config;
  config.u_pairs = 100'000;
  config.num_destinations = 2000;
  config.skew = 1.2;
  config.seed = 5;
  const ZipfWorkload workload(config);

  const auto run_with_s = [&](std::uint32_t s) {
    double recall = 0.0;
    for (std::uint64_t seed = 0; seed < 3; ++seed) {
      DcsParams params;
      params.buckets_per_table = s;
      params.seed = seed;
      DistinctCountSketch sketch(params);
      for (const FlowUpdate& u : workload.updates())
        sketch.update(u.dest, u.source, u.delta);
      recall += evaluate_top_k(sketch.top_k(10).entries,
                               workload.true_frequencies(), 10)
                    .recall;
    }
    return recall / 3.0;
  };

  const double narrow = run_with_s(32);
  const double wide = run_with_s(512);
  EXPECT_GE(wide + 0.10, narrow);  // allow small noise, expect improvement
  EXPECT_GE(wide, 0.5);
}

TEST(Integration, SimulatedNetworkFeedsDistributedMonitor) {
  // End to end through the event-driven simulator: emergent flood dynamics,
  // per-edge ingress exporters, sharded sketches, collector query.
  sim::Topology topology;
  const auto edges = sim::make_isp_topology(topology, 4);
  constexpr Addr kVictim = 0x0a0000fe;
  topology.attach_host(kVictim, edges[0]);
  std::vector<Addr> clients;
  for (Addr i = 0; i < 500; ++i) {
    clients.push_back(0xc0a80000 + i);
    topology.attach_host(clients.back(), edges[1 + (i % 3)]);
  }
  sim::Simulator simulator(std::move(topology));
  auto server = std::make_unique<sim::ServerBehavior>(
      sim::ServerBehavior::Config{.address = kVictim});
  auto* server_ptr = server.get();
  simulator.set_behavior(kVictim, std::move(server));
  for (const Addr client : clients)
    simulator.set_behavior(client,
                           std::make_unique<sim::ClientBehavior>(
                               sim::ClientBehavior::Config{.address = client}));

  DcsParams params;
  params.seed = 12;
  ShardedMonitor monitors(params, edges.size());
  DistinctCountSketch single(params);
  std::vector<std::unique_ptr<FlowUpdateExporter>> exporters;
  for (std::size_t i = 0; i < edges.size(); ++i) {
    exporters.push_back(std::make_unique<FlowUpdateExporter>());
    FlowUpdateExporter* exporter = exporters.back().get();
    simulator.add_ingress_tap(
        edges[i],
        [exporter, &monitors, &single, i](sim::RouterId, std::uint64_t,
                                          const Packet& packet) {
          exporter->observe(packet, [&](const FlowUpdate& update) {
            monitors.update_at(i, update.dest, update.source, update.delta);
            single.update(update.dest, update.source, update.delta);
          });
        });
  }

  Xoshiro256 rng(3);
  // Legitimate sessions (they complete -> deleted from the sketches)...
  for (const Addr client : clients)
    sim::launch_session(simulator, rng.bounded(10'000), client, kVictim);
  // ...plus a spoofed flood that never completes.
  sim::launch_spoofed_flood(simulator, edges[2], kVictim, 5000, 5000, 2000,
                            77, rng);
  simulator.run();

  // Ground truth from the server itself.
  EXPECT_EQ(server_ptr->half_open(), 2000u);
  EXPECT_EQ(server_ptr->established(), 500u);

  // Collector view == single-monitor view, and it names the victim with the
  // flood's (not the legitimate clients') magnitude.
  EXPECT_TRUE(monitors.collect() == single);
  const auto top = monitors.collect_tracking().top_k(1).entries;
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].group, kVictim);
  EXPECT_NEAR(static_cast<double>(top[0].estimate), 2000.0, 800.0);
}

TEST(Integration, MonitorSurvivesMillionUpdateStream) {
  // Soak: one full ZipfWorkload through the monitor with periodic checks;
  // invariants must hold at the end.
  ZipfWorkloadConfig config;
  config.u_pairs = 200'000;
  config.num_destinations = 5000;
  config.skew = 1.5;
  config.churn = 2;  // 1M updates total
  const ZipfWorkload workload(config);

  DdosMonitorConfig monitor_config;
  monitor_config.sketch.seed = 19;
  monitor_config.check_interval = 4096;
  DdosMonitor monitor(monitor_config);
  monitor.ingest(workload.updates());
  EXPECT_EQ(monitor.updates_ingested(), workload.updates().size());
  EXPECT_TRUE(monitor.tracker().check_invariants());
}

}  // namespace
}  // namespace dcs
