// The built-in instrumentation actually counts: stream real workloads
// through the sketches / exporter / monitor and assert metric deltas on the
// global registry, plus the structured alert-event log.
#include <cstdint>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "detection/alert_log.hpp"
#include "detection/ddos_monitor.hpp"
#include "net/exporter.hpp"
#include "net/scenarios.hpp"
#include "obs/instruments.hpp"
#include "obs/metrics.hpp"
#include "sketch/distinct_count_sketch.hpp"
#include "sketch/tracking_dcs.hpp"

namespace dcs {
namespace {

class ObsInstrumentationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = obs::enabled();
    obs::set_enabled(true);
    if (!obs::recording()) GTEST_SKIP() << "telemetry compiled out";
  }
  void TearDown() override { obs::set_enabled(was_enabled_); }

  static DcsParams small_params() {
    DcsParams params;
    params.num_tables = 2;
    params.buckets_per_table = 64;
    params.seed = 5;
    return params;
  }

 private:
  bool was_enabled_ = true;
};

TEST_F(ObsInstrumentationTest, SketchCountsUpdatesAndQueries) {
  obs::SketchMetrics& m = obs::SketchMetrics::get();
  const std::uint64_t updates0 = m.updates.value();
  const std::uint64_t deletes0 = m.deletes.value();
  const std::uint64_t queries0 = m.query_ns.snapshot().count;
  const std::uint64_t classified0 = m.query_empty.value() +
                                    m.query_singleton.value() +
                                    m.query_collision.value();

  DistinctCountSketch sketch(small_params());
  for (std::uint32_t i = 0; i < 500; ++i) sketch.update(1, i, +1);
  for (std::uint32_t i = 0; i < 100; ++i) sketch.update(1, i, -1);
  (void)sketch.top_k(5);

  EXPECT_EQ(m.updates.value() - updates0, 600u);
  EXPECT_EQ(m.deletes.value() - deletes0, 100u);
  EXPECT_EQ(m.query_ns.snapshot().count - queries0, 1u);
  // A query classifies at least one second-level bucket.
  EXPECT_GT(m.query_empty.value() + m.query_singleton.value() +
                m.query_collision.value(),
            classified0);
}

TEST_F(ObsInstrumentationTest, SketchLevelHitsFoldPastMaxLabel) {
  obs::SketchMetrics& m = obs::SketchMetrics::get();
  // Level 0 absorbs ~half of all geometric hash draws, so any stream of a
  // few hundred updates must hit it.
  const std::uint64_t level0_before = m.level_hits(0).value();
  DistinctCountSketch sketch(small_params());
  for (std::uint32_t i = 0; i < 400; ++i) sketch.update(7, i, +1);
  // Update-path tallies are batched; a query flushes them.
  (void)sketch.top_k(1);
  EXPECT_GT(m.level_hits(0).value(), level0_before);
  // Out-of-range levels fold into the shared "32+" counter series.
  EXPECT_EQ(&m.level_hits(obs::SketchMetrics::kMaxLevelLabel),
            &m.level_hits(obs::SketchMetrics::kMaxLevelLabel + 40));
}

TEST_F(ObsInstrumentationTest, TrackingCountsChurnAndHeapOps) {
  obs::TrackingMetrics& m = obs::TrackingMetrics::get();
  const std::uint64_t updates0 = m.updates.value();
  const std::uint64_t gained0 = m.singletons_gained.value();
  const std::uint64_t heap0 = m.heap_ops.value();
  const std::uint64_t queries0 = m.query_ns.snapshot().count;

  TrackingDcs sketch(small_params());
  for (std::uint32_t i = 0; i < 300; ++i) sketch.update(9, i, +1);
  (void)sketch.top_k(3);

  EXPECT_EQ(m.updates.value() - updates0, 300u);
  EXPECT_GT(m.singletons_gained.value(), gained0);
  EXPECT_GT(m.heap_ops.value(), heap0);
  EXPECT_EQ(m.query_ns.snapshot().count - queries0, 1u);
}

TEST_F(ObsInstrumentationTest, ExporterCountsHandshakesAndGauge) {
  obs::ExporterMetrics& m = obs::ExporterMetrics::get();
  const std::uint64_t packets0 = m.packets.value();
  const std::uint64_t opens0 = m.opens.value();

  Timeline timeline(321);
  BackgroundTrafficConfig background;
  background.sessions = 500;
  add_background_traffic(timeline, background);
  FlowUpdateExporter exporter;
  const auto updates = exporter.run(timeline.finalize());

  EXPECT_GT(m.packets.value(), packets0);
  EXPECT_GT(m.opens.value(), opens0);
  EXPECT_GE(updates.size(), 500u);
  // The half-open gauge tracks the live table size.
  EXPECT_EQ(m.half_open.value(),
            static_cast<std::int64_t>(exporter.half_open_pairs()));
}

TEST_F(ObsInstrumentationTest, MonitorCountsChecksAndRecordsAlertContext) {
  obs::MonitorMetrics& m = obs::MonitorMetrics::get();
  const std::uint64_t checks0 = m.checks.value();
  const std::uint64_t raised0 = m.alerts_raised.value();

  DdosMonitorConfig config;
  config.sketch = small_params();
  config.check_interval = 512;
  config.min_absolute = 100;
  DdosMonitor monitor(config);
  std::uint64_t callbacks = 0;
  monitor.set_check_callback([&callbacks](const DdosMonitor&) { ++callbacks; });

  // One victim destination accumulating distinct half-open sources.
  constexpr Addr kVictim = 0xabcd1234;
  std::vector<FlowUpdate> updates;
  for (std::uint32_t i = 0; i < 2000; ++i)
    updates.push_back({0x10000 + i, kVictim, +1});
  monitor.ingest(updates);
  monitor.check_now();

  EXPECT_EQ(m.checks.value() - checks0, monitor.checks_run());
  EXPECT_EQ(callbacks, monitor.checks_run());
  EXPECT_GE(m.alerts_raised.value() - raised0, 1u);
  ASSERT_FALSE(monitor.alerts().empty());
  const Alert& alert = monitor.alerts().front();
  EXPECT_EQ(alert.kind, Alert::Kind::kRaised);
  EXPECT_EQ(alert.subject, kVictim);
  EXPECT_GT(alert.epoch, 0u);
  EXPECT_GE(alert.threshold, static_cast<double>(config.min_absolute));
  EXPECT_GT(alert.stream_position, 0u);
}

TEST_F(ObsInstrumentationTest, AlertLogFormatsAndSerializes) {
  Alert alert;
  alert.kind = Alert::Kind::kRaised;
  alert.subject = 0xdeadbeef;
  alert.estimated_frequency = 4096;
  alert.baseline = 12.5;
  alert.stream_position = 81920;
  alert.epoch = 40;
  alert.threshold = 1000.0;

  const std::string line = format_alert(alert);
  EXPECT_NE(line.find("RAISED"), std::string::npos) << line;
  EXPECT_NE(line.find("dest=deadbeef"), std::string::npos) << line;
  EXPECT_NE(line.find("epoch=40"), std::string::npos) << line;

  const std::string json = alert_to_json(alert);
  EXPECT_NE(json.find("\"kind\":\"raised\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"dest\":\"deadbeef\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"estimate\":4096"), std::string::npos) << json;
  EXPECT_NE(json.find("\"epoch\":40"), std::string::npos) << json;

  // Role string renames the subject key for source-ranked monitors.
  EXPECT_NE(alert_to_json(alert, "source").find("\"source\":\"deadbeef\""),
            std::string::npos);

  const std::string array = alerts_to_json({alert, alert});
  EXPECT_EQ(array.front(), '[');
  EXPECT_EQ(array.substr(array.size() - 2), "]\n");
}

TEST_F(ObsInstrumentationTest, DisabledRecordingCountsNothing) {
  obs::SketchMetrics& m = obs::SketchMetrics::get();
  obs::set_enabled(false);
  const std::uint64_t updates0 = m.updates.value();
  DistinctCountSketch sketch(small_params());
  for (std::uint32_t i = 0; i < 200; ++i) sketch.update(3, i, +1);
  (void)sketch.top_k(2);
  EXPECT_EQ(m.updates.value(), updates0);
  obs::set_enabled(true);
}

}  // namespace
}  // namespace dcs
