// Property tests for IndexedMaxHeap against a brute-force reference model.
#include "sketch/indexed_heap.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <map>
#include <vector>

#include "common/random.hpp"

namespace dcs {
namespace {

using Heap = IndexedMaxHeap<std::uint32_t>;

TEST(IndexedHeap, StartsEmpty) {
  Heap heap;
  EXPECT_TRUE(heap.empty());
  EXPECT_EQ(heap.size(), 0u);
  EXPECT_EQ(heap.priority(5), 0);
  EXPECT_TRUE(heap.top_k(3).empty());
}

TEST(IndexedHeap, InsertAndTop) {
  Heap heap;
  heap.add(1, 10);
  heap.add(2, 30);
  heap.add(3, 20);
  EXPECT_EQ(heap.size(), 3u);
  EXPECT_EQ(heap.top().key, 2u);
  EXPECT_EQ(heap.top().priority, 30);
}

TEST(IndexedHeap, TopKIsDescendingAndNonDestructive) {
  Heap heap;
  for (std::uint32_t k = 0; k < 100; ++k) heap.add(k, (k * 37) % 101 + 1);
  const auto top = heap.top_k(10);
  ASSERT_EQ(top.size(), 10u);
  for (std::size_t i = 1; i < top.size(); ++i)
    EXPECT_GE(top[i - 1].priority, top[i].priority);
  EXPECT_EQ(heap.size(), 100u);  // unchanged
  EXPECT_TRUE(heap.validate());
}

TEST(IndexedHeap, TiesBreakByAscendingKey) {
  Heap heap;
  heap.add(9, 5);
  heap.add(3, 5);
  heap.add(7, 5);
  const auto top = heap.top_k(3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].key, 3u);
  EXPECT_EQ(top[1].key, 7u);
  EXPECT_EQ(top[2].key, 9u);
}

TEST(IndexedHeap, ZeroPriorityErases) {
  Heap heap;
  heap.add(1, 3);
  heap.add(1, -3);
  EXPECT_TRUE(heap.empty());
  EXPECT_FALSE(heap.contains(1));
}

TEST(IndexedHeap, NegativeForNewKeyThrows) {
  Heap heap;
  EXPECT_THROW(heap.add(1, -1), std::logic_error);
}

TEST(IndexedHeap, UnderflowThrows) {
  Heap heap;
  heap.add(1, 2);
  EXPECT_THROW(heap.add(1, -3), std::logic_error);
}

TEST(IndexedHeap, EraseMissingIsNoop) {
  Heap heap;
  heap.erase(99);  // erase on an empty heap
  EXPECT_TRUE(heap.empty());
  heap.add(1, 1);
  heap.erase(99);  // erase of a key that was never added
  EXPECT_EQ(heap.size(), 1u);
  heap.erase(1);
  heap.erase(1);  // double erase of the same key
  EXPECT_TRUE(heap.empty());
  EXPECT_TRUE(heap.validate());
}

TEST(IndexedHeap, UpdateKeyReordersHeap) {
  Heap heap;
  heap.add(1, 10);
  heap.add(2, 20);
  heap.add(3, 30);
  EXPECT_EQ(heap.top().key, 3u);
  heap.add(1, 25);  // 1: 10 -> 35, overtakes 3
  EXPECT_EQ(heap.top().key, 1u);
  EXPECT_EQ(heap.top().priority, 35);
  heap.add(1, -30);  // 1: 35 -> 5, sinks below everyone
  EXPECT_EQ(heap.top().key, 3u);
  EXPECT_EQ(heap.priority(1), 5);
  EXPECT_TRUE(heap.validate());
}

TEST(IndexedHeap, DestructivePopDrainIsTotallyOrdered) {
  Heap heap;
  for (std::uint32_t k = 0; k < 200; ++k) heap.add(k, (k * 53) % 97 + 1);
  std::int64_t last_priority = std::numeric_limits<std::int64_t>::max();
  std::uint32_t last_key = 0;
  std::size_t popped = 0;
  while (!heap.empty()) {
    const auto top = heap.top();
    // Strictly descending by priority; ties strictly ascending by key.
    if (top.priority == last_priority)
      EXPECT_GT(top.key, last_key);
    else
      EXPECT_LT(top.priority, last_priority);
    last_priority = top.priority;
    last_key = top.key;
    heap.erase(top.key);
    EXPECT_FALSE(heap.contains(top.key));
    ++popped;
  }
  EXPECT_EQ(popped, 200u);
  EXPECT_TRUE(heap.validate());
}

TEST(IndexedHeap, TopKLargerThanSizeReturnsAll) {
  Heap heap;
  heap.add(1, 1);
  heap.add(2, 2);
  EXPECT_EQ(heap.top_k(100).size(), 2u);
}

// Randomized differential test against a map-based reference.
class HeapProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HeapProperty, MatchesReferenceModel) {
  Xoshiro256 rng(GetParam());
  Heap heap;
  std::map<std::uint32_t, std::int64_t> reference;

  for (int step = 0; step < 3000; ++step) {
    const std::uint32_t key = static_cast<std::uint32_t>(rng.bounded(64));
    const auto it = reference.find(key);
    const std::int64_t current = it == reference.end() ? 0 : it->second;
    // Pick a legal delta: increments always; decrements only when positive.
    std::int64_t delta;
    if (current > 0 && rng.bounded(2) == 0)
      delta = -static_cast<std::int64_t>(rng.bounded(static_cast<std::uint64_t>(current)) + 1);
    else
      delta = static_cast<std::int64_t>(rng.bounded(5)) + 1;

    heap.add(key, delta);
    const std::int64_t updated = current + delta;
    if (updated == 0)
      reference.erase(key);
    else
      reference[key] = updated;

    if (step % 100 == 0) {
      ASSERT_TRUE(heap.validate()) << "step " << step;
    }
  }

  ASSERT_TRUE(heap.validate());
  ASSERT_EQ(heap.size(), reference.size());
  for (const auto& [key, priority] : reference)
    EXPECT_EQ(heap.priority(key), priority) << "key " << key;

  // Full drain through top_k must equal the reference sorted by
  // (priority desc, key asc).
  std::vector<std::pair<std::int64_t, std::uint32_t>> expected;
  for (const auto& [key, priority] : reference)
    expected.emplace_back(-priority, key);
  std::sort(expected.begin(), expected.end());
  const auto drained = heap.top_k(heap.size());
  ASSERT_EQ(drained.size(), expected.size());
  for (std::size_t i = 0; i < drained.size(); ++i) {
    EXPECT_EQ(drained[i].priority, -expected[i].first);
    EXPECT_EQ(drained[i].key, expected[i].second);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeapProperty,
                         ::testing::Range<std::uint64_t>(0, 10));

}  // namespace
}  // namespace dcs
