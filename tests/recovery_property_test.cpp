// Recovery oracle tests for the collector durability layer (src/service
// checkpoint + epoch journal).
//
// The oracle is exact, not approximate: the DCS is linear, so state restored
// from a checkpoint (plus journal replay) must reproduce the original
// counters bit for bit — identical top-k (entries *and* estimates),
// identical distinct-pair estimates, identical per-site watermarks. Any
// drift, however small, means recovery silently changed what the detector
// sees, which is exactly the failure mode a patient attacker waits for.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "detection/baseline_detector.hpp"
#include "service/checkpoint.hpp"
#include "service/collector.hpp"
#include "service/epoch_journal.hpp"
#include "service/agent.hpp"
#include "sketch/tracking_dcs.hpp"
#include "stream/generator.hpp"

namespace dcs::service {
namespace {

/// Fresh per-test scratch directory under gtest's temp root.
std::string test_dir(const char* leaf) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  std::filesystem::path dir = std::filesystem::path(::testing::TempDir()) /
                              (std::string(info->test_suite_name()) + "." +
                               info->name() + "." + leaf);
  std::filesystem::remove_all(dir);
  return dir.string();
}

std::vector<FlowUpdate> zipf_updates(std::uint64_t pairs, double skew,
                                     std::uint64_t seed) {
  ZipfWorkloadConfig config;
  config.u_pairs = pairs;
  config.num_destinations = 60;
  config.skew = skew;
  config.seed = seed;
  return ZipfWorkload(config).updates();
}

std::string serialize_sketch(const DistinctCountSketch& sketch) {
  std::ostringstream out(std::ios::binary);
  BinaryWriter writer(out);
  sketch.serialize(writer);
  return std::move(out).str();
}

void expect_tracking_equal(const DistinctCountSketch& restored,
                           const DistinctCountSketch& original,
                           const std::vector<FlowUpdate>& updates) {
  ASSERT_TRUE(restored == original);
  const TrackingDcs a(restored);
  const TrackingDcs b(original);
  const auto top_a = a.top_k(10);
  const auto top_b = b.top_k(10);
  EXPECT_EQ(top_a.entries, top_b.entries);
  EXPECT_EQ(a.estimate_distinct_pairs(), b.estimate_distinct_pairs());
  for (std::size_t i = 0; i < updates.size(); i += 97)
    EXPECT_EQ(a.estimate_frequency(updates[i].dest),
              b.estimate_frequency(updates[i].dest))
        << "dest " << updates[i].dest;
}

// --- checkpoint round trips --------------------------------------------------

/// Grid over sketch geometry and workload skew, with deletions: a checkpoint
/// written and re-loaded must reproduce every query answer exactly.
TEST(RecoveryProperty, CheckpointRoundTripGrid) {
  for (const int r : {2, 3}) {
    for (const std::uint32_t s : {32u, 128u}) {
      for (const double skew : {0.8, 1.3}) {
        SCOPED_TRACE(::testing::Message()
                     << "r=" << r << " s=" << s << " skew=" << skew);
        DcsParams params;
        params.num_tables = r;
        params.buckets_per_table = s;
        params.seed = 17;

        const auto updates =
            zipf_updates(4000, skew, 1000 + static_cast<std::uint64_t>(s));
        DistinctCountSketch sketch(params);
        for (const auto& update : updates)
          sketch.update(update.dest, update.source, update.delta);
        // Deletions: remove every 7th pair again, exercising negative
        // counters through the checkpoint path.
        for (std::size_t i = 0; i < updates.size(); i += 7)
          sketch.update(updates[i].dest, updates[i].source, -updates[i].delta);

        CheckpointState state;
        state.generation = 3;
        state.sketch = sketch;
        state.sites = {{1, 8, 8, 4000, 1, 2}, {9, 5, 4, 2000, 0, 0}};
        state.deltas_merged = 12;
        state.duplicate_deltas = 2;
        state.dropped_epochs = 1;
        state.byes = 1;

        const CheckpointStore store(test_dir("grid"));
        store.write(state);
        std::uint64_t corrupt = 0;
        const auto loaded = store.load_latest(&corrupt);
        ASSERT_TRUE(loaded.has_value());
        EXPECT_EQ(corrupt, 0u);
        EXPECT_EQ(loaded->generation, 3u);
        EXPECT_EQ(loaded->sites, state.sites);
        EXPECT_EQ(loaded->deltas_merged, 12u);
        EXPECT_EQ(loaded->duplicate_deltas, 2u);
        EXPECT_EQ(loaded->dropped_epochs, 1u);
        EXPECT_EQ(loaded->byes, 1u);
        expect_tracking_equal(loaded->sketch, sketch, updates);
      }
    }
  }
}

/// Detector state must survive the round trip behaviorally: the restored
/// detector carries the same alert history and, fed the same subsequent
/// observations, makes the same decisions as the original.
TEST(RecoveryProperty, DetectorStateRoundTrip) {
  BaselineDetectorConfig config;
  config.min_absolute = 100;
  config.alarm_factor = 4.0;
  BaselineDetector detector(config);

  std::vector<TopKEntry> quiet = {{1, 120}, {2, 80}, {3, 60}};
  for (std::uint64_t check = 1; check <= 20; ++check)
    detector.observe(quiet, check * 1000);
  std::vector<TopKEntry> attack = {{1, 9000}, {2, 80}, {3, 60}};
  detector.observe(attack, 21000);
  ASSERT_EQ(detector.active_alarm_count(), 1u);
  ASSERT_FALSE(detector.alerts().empty());

  std::ostringstream out(std::ios::binary);
  BinaryWriter writer(out);
  detector.serialize(writer);
  std::istringstream in(std::move(out).str(), std::ios::binary);
  BinaryReader reader(in);
  BaselineDetector restored = BaselineDetector::deserialize(reader, config);

  EXPECT_EQ(restored.checks_run(), detector.checks_run());
  EXPECT_EQ(restored.active_alarms(), detector.active_alarms());
  ASSERT_EQ(restored.alerts().size(), detector.alerts().size());
  for (std::size_t i = 0; i < restored.alerts().size(); ++i) {
    const Alert& a = restored.alerts()[i];
    const Alert& b = detector.alerts()[i];
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.subject, b.subject);
    EXPECT_EQ(a.estimated_frequency, b.estimated_frequency);
    EXPECT_EQ(a.baseline, b.baseline);
    EXPECT_EQ(a.stream_position, b.stream_position);
    EXPECT_EQ(a.epoch, b.epoch);
    EXPECT_EQ(a.threshold, b.threshold);
  }

  // Behavioral equivalence going forward: both see the attack subside and
  // clear the alarm on the same check with identical event fields.
  std::vector<TopKEntry> subsided = {{1, 110}, {2, 80}, {3, 60}};
  const auto original_out = detector.observe(subsided, 22000);
  const auto restored_out = restored.observe(subsided, 22000);
  EXPECT_EQ(original_out.raised, restored_out.raised);
  EXPECT_EQ(original_out.cleared, restored_out.cleared);
  EXPECT_EQ(restored.active_alarm_count(), detector.active_alarm_count());
  EXPECT_EQ(restored.alerts().size(), detector.alerts().size());
}

/// Identical detector state must serialize to identical bytes (the
/// unordered_map iteration order is normalized away) — a prerequisite for
/// comparing checkpoint files across runs.
TEST(RecoveryProperty, DetectorSerializationIsDeterministic) {
  const auto build = [] {
    BaselineDetector detector;
    std::vector<TopKEntry> entries = {{40, 700}, {10, 900}, {30, 650}};
    for (std::uint64_t check = 1; check <= 10; ++check)
      detector.observe(entries, check * 500);
    std::ostringstream out(std::ios::binary);
    BinaryWriter writer(out);
    detector.serialize(writer);
    return std::move(out).str();
  };
  EXPECT_EQ(build(), build());
}

// --- journal round trips -----------------------------------------------------

TEST(RecoveryProperty, JournalRoundTrip) {
  const std::string dir = test_dir("journal");
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/journal-00000001.dcsj";

  DcsParams params;
  params.num_tables = 2;
  params.buckets_per_table = 32;
  params.seed = 5;

  std::vector<EpochJournal::Record> written;
  {
    auto journal = EpochJournal::open(path);
    for (std::uint64_t epoch = 1; epoch <= 5; ++epoch) {
      DistinctCountSketch sketch(params);
      for (std::uint64_t i = 0; i < 50; ++i)
        sketch.update(static_cast<Addr>(epoch * 10 + i % 7),
                      static_cast<Addr>(i), +1);
      EpochJournal::Record record;
      record.site_id = 3 + epoch % 2;
      record.epoch = epoch;
      record.updates = 50;
      record.sketch_blob = serialize_sketch(sketch);
      journal.append(record);
      written.push_back(std::move(record));
    }
    EXPECT_EQ(journal.appended_records(), 5u);
    journal.close();
  }

  const auto replayed = EpochJournal::replay(path);
  EXPECT_FALSE(replayed.truncated_tail);
  ASSERT_EQ(replayed.records.size(), written.size());
  for (std::size_t i = 0; i < written.size(); ++i) {
    EXPECT_EQ(replayed.records[i].site_id, written[i].site_id);
    EXPECT_EQ(replayed.records[i].epoch, written[i].epoch);
    EXPECT_EQ(replayed.records[i].updates, written[i].updates);
    EXPECT_EQ(replayed.records[i].sketch_blob, written[i].sketch_blob);
  }

  // A journal that never existed is empty, not an error.
  const auto missing = EpochJournal::replay(dir + "/journal-00000099.dcsj");
  EXPECT_TRUE(missing.records.empty());
  EXPECT_FALSE(missing.truncated_tail);
}

// --- collector-level recovery ------------------------------------------------

/// Checkpoint + journal tail assembled on disk by hand (as a crash would
/// leave them): a new collector must recover checkpoint state *and* re-merge
/// the journaled deltas that no checkpoint covers.
TEST(RecoveryProperty, CollectorRecoversCheckpointPlusJournalTail) {
  CollectorConfig config;
  config.params.num_tables = 3;
  config.params.buckets_per_table = 64;
  config.params.seed = 17;
  config.run_detection = false;
  config.state_dir = test_dir("state");
  config.checkpoint_every = 1000;  // only the explicit writes below

  const auto updates = zipf_updates(2000, 1.2, 99);
  DistinctCountSketch expected(config.params);
  std::vector<std::string> blobs;  // four epoch deltas, 500 updates each
  for (int e = 0; e < 4; ++e) {
    DistinctCountSketch delta(config.params);
    for (std::size_t i = static_cast<std::size_t>(e) * 500;
         i < static_cast<std::size_t>(e + 1) * 500; ++i) {
      delta.update(updates[i].dest, updates[i].source, updates[i].delta);
      expected.update(updates[i].dest, updates[i].source, updates[i].delta);
    }
    blobs.push_back(serialize_sketch(delta));
  }

  {
    const CheckpointStore store(config.state_dir);
    // Checkpoint generation 1 covers epochs 1-2...
    CheckpointState state;
    state.generation = 1;
    state.sketch = DistinctCountSketch(config.params);
    for (std::size_t i = 0; i < 1000; ++i)
      state.sketch.update(updates[i].dest, updates[i].source,
                          updates[i].delta);
    state.sites = {{7, 2, 2, 1000, 0, 0}};
    state.deltas_merged = 2;
    store.write(state);
    // ... and the generation-1 journal holds epochs 1-3: 1-2 overlap the
    // checkpoint (must be deduped on replay), 3 is the un-checkpointed tail.
    auto journal = EpochJournal::open(store.journal_path(1));
    for (std::uint64_t epoch = 1; epoch <= 3; ++epoch)
      journal.append({7, epoch, 500, blobs[epoch - 1]});
  }

  Collector collector(config);  // recovery runs in the constructor
  auto stats = collector.stats();
  EXPECT_EQ(stats.recoveries, 1u);
  EXPECT_EQ(stats.replayed_epochs, 1u);  // epoch 3
  EXPECT_EQ(stats.replay_deduped, 2u);   // epochs 1-2, covered by checkpoint
  EXPECT_EQ(stats.deltas_merged, 3u);
  EXPECT_GE(collector.checkpoint_generation(), 2u);  // recovery re-checkpoints

  // Live traffic continues seamlessly: ship epoch 4 through a real agent
  // connection? Not needed here — merge via a second recovery ingredient is
  // covered by the loopback test below. Verify the recovered view first.
  {
    DistinctCountSketch through_epoch3(config.params);
    for (std::size_t i = 0; i < 1500; ++i)
      through_epoch3.update(updates[i].dest, updates[i].source,
                            updates[i].delta);
    EXPECT_TRUE(collector.merged_sketch() == through_epoch3);
  }
  const auto sites = collector.site_stats();
  ASSERT_EQ(sites.size(), 1u);
  EXPECT_EQ(sites[0].site_id, 7u);
  EXPECT_EQ(sites[0].last_epoch, 3u);
  EXPECT_EQ(sites[0].epochs_merged, 3u);
  EXPECT_EQ(sites[0].updates_merged, 1500u);
}

/// Full loopback cycle: agents ship epochs to a durable collector, the
/// collector stops (graceful = final checkpoint), and a fresh collector over
/// the same state directory answers every query exactly like the original —
/// and exactly like a single-sketch reference ingest of the whole stream.
TEST(RecoveryProperty, CollectorRestartReproducesQueriesExactly) {
  CollectorConfig config;
  config.params.num_tables = 3;
  config.params.buckets_per_table = 64;
  config.params.seed = 17;
  config.io_timeout_ms = 50;
  config.detection.min_absolute = 200;
  config.state_dir = test_dir("state");
  config.checkpoint_every = 3;  // several generations over 12 deltas

  const auto updates = zipf_updates(6000, 1.3, 41);
  DistinctCountSketch expected(config.params);
  for (const auto& update : updates)
    expected.update(update.dest, update.source, update.delta);

  TopKResult top_before;
  std::vector<Collector::SiteStats> sites_before;
  std::vector<Alert> alerts_before;
  {
    Collector collector(config);
    collector.start();
    std::vector<std::unique_ptr<SiteAgent>> agents;
    for (std::uint64_t site = 1; site <= 2; ++site) {
      SiteAgentConfig agent_config;
      agent_config.site_id = site;
      agent_config.collector_port = collector.port();
      agent_config.params = config.params;
      agent_config.epoch_updates = 500;
      agent_config.jitter_seed = site;
      agents.push_back(std::make_unique<SiteAgent>(agent_config));
      agents.back()->start();
    }
    for (std::size_t i = 0; i < updates.size(); ++i)
      agents[i % 2]->ingest(updates[i]);
    for (auto& agent : agents) {
      ASSERT_TRUE(agent->flush(10000));
      agent->stop();
    }
    ASSERT_TRUE(collector.wait_for_deltas(12, 10000));
    collector.stop();
    top_before = collector.top_k(10);
    sites_before = collector.site_stats();
    alerts_before = collector.alerts();
    EXPECT_TRUE(collector.merged_sketch() == expected);
  }

  Collector recovered(config);
  EXPECT_EQ(recovered.stats().recoveries, 1u);
  EXPECT_TRUE(recovered.merged_sketch() == expected);

  const auto top_after = recovered.top_k(10);
  EXPECT_EQ(top_after.entries, top_before.entries);
  for (const auto& entry : top_before.entries)
    EXPECT_EQ(recovered.estimate_frequency(entry.group), entry.estimate);

  const auto sites_after = recovered.site_stats();
  ASSERT_EQ(sites_after.size(), sites_before.size());
  for (std::size_t i = 0; i < sites_after.size(); ++i) {
    EXPECT_EQ(sites_after[i].site_id, sites_before[i].site_id);
    EXPECT_EQ(sites_after[i].last_epoch, sites_before[i].last_epoch);
    EXPECT_EQ(sites_after[i].epochs_merged, sites_before[i].epochs_merged);
    EXPECT_EQ(sites_after[i].updates_merged, sites_before[i].updates_merged);
    EXPECT_EQ(sites_after[i].dropped_epochs, sites_before[i].dropped_epochs);
  }

  // Detector state came back too: same alert history, same active alarms.
  ASSERT_EQ(recovered.alerts().size(), alerts_before.size());
  for (std::size_t i = 0; i < alerts_before.size(); ++i) {
    EXPECT_EQ(recovered.alerts()[i].kind, alerts_before[i].kind);
    EXPECT_EQ(recovered.alerts()[i].subject, alerts_before[i].subject);
    EXPECT_EQ(recovered.alerts()[i].epoch, alerts_before[i].epoch);
  }
}

}  // namespace
}  // namespace dcs::service
