// Tests for the event-driven ISP simulator: routing, forwarding, taps, and
// the emergent TCP handshake / SYN-flood dynamics.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/agents.hpp"
#include "sim/simulator.hpp"
#include "sim/topology.hpp"

namespace dcs::sim {
namespace {

// ------------------------------ Topology ---------------------------------

TEST(Topology, BuildsAndRoutesLine) {
  Topology topology;
  const RouterId a = topology.add_router("a");
  const RouterId b = topology.add_router("b");
  const RouterId c = topology.add_router("c");
  topology.add_link(a, b, 3);
  topology.add_link(b, c, 4);
  topology.build_routes();
  EXPECT_EQ(topology.next_hop(a, c), b);
  EXPECT_EQ(topology.next_hop(b, c), c);
  EXPECT_EQ(topology.path_latency(a, c), 7u);
  EXPECT_EQ(topology.path_latency(c, a), 7u);
  EXPECT_EQ(topology.path_latency(a, a), 0u);
}

TEST(Topology, PrefersLowLatencyPath) {
  // a-b direct (10) vs a-c-b (2+2): must route via c.
  Topology topology;
  const RouterId a = topology.add_router("a");
  const RouterId b = topology.add_router("b");
  const RouterId c = topology.add_router("c");
  topology.add_link(a, b, 10);
  topology.add_link(a, c, 2);
  topology.add_link(c, b, 2);
  topology.build_routes();
  EXPECT_EQ(topology.next_hop(a, b), c);
  EXPECT_EQ(topology.path_latency(a, b), 4u);
}

TEST(Topology, RejectsDisconnectedGraph) {
  Topology topology;
  topology.add_router("a");
  topology.add_router("b");
  EXPECT_THROW(topology.build_routes(), std::logic_error);
}

TEST(Topology, RejectsBadLinks) {
  Topology topology;
  const RouterId a = topology.add_router("a");
  const RouterId b = topology.add_router("b");
  EXPECT_THROW(topology.add_link(a, a, 1), std::invalid_argument);
  EXPECT_THROW(topology.add_link(a, b, 0), std::invalid_argument);
  EXPECT_THROW(topology.add_link(a, 99, 1), std::out_of_range);
}

TEST(Topology, HostAttachment) {
  Topology topology;
  const RouterId a = topology.add_router("a");
  topology.attach_host(100, a);
  EXPECT_EQ(topology.host_router(100), a);
  EXPECT_FALSE(topology.host_router(101).has_value());
  EXPECT_THROW(topology.attach_host(100, a), std::invalid_argument);
}

TEST(Topology, IspFactoryIsConnected) {
  Topology topology;
  const auto edges = make_isp_topology(topology, 4);
  EXPECT_EQ(edges.size(), 4u);
  EXPECT_EQ(topology.num_routers(), 8u);
  // Edge i to edge j: edge->core (1) + ring hops (2 each) + core->edge (1).
  EXPECT_EQ(topology.path_latency(edges[0], edges[1]), 4u);
  EXPECT_EQ(topology.path_latency(edges[0], edges[2]), 6u);  // two ring hops
}

// ------------------------------ Simulator --------------------------------

struct SimFixture {
  SimFixture() : simulator(build()) {}

  static Simulator build() {
    Topology topology;
    const auto edges = make_isp_topology(topology, 4);
    topology.attach_host(kClient, edges[0]);
    topology.attach_host(kServer, edges[2]);
    return Simulator(std::move(topology));
  }

  static constexpr Addr kClient = 0xc0a80001;
  static constexpr Addr kServer = 0x0a000001;
  Simulator simulator;
};

TEST(Simulator, DeliversAcrossTheNetworkWithPathLatency) {
  SimFixture fx;
  std::vector<std::uint64_t> delivered_at;
  class Recorder final : public HostBehavior {
   public:
    explicit Recorder(std::vector<std::uint64_t>& times) : times_(times) {}
    void on_packet(Simulator&, std::uint64_t now, const Packet&) override {
      times_.push_back(now);
    }
   private:
    std::vector<std::uint64_t>& times_;
  };
  fx.simulator.set_behavior(SimFixture::kServer,
                            std::make_unique<Recorder>(delivered_at));
  fx.simulator.send(10, {10, SimFixture::kClient, SimFixture::kServer,
                         PacketType::kSyn});
  fx.simulator.run();
  ASSERT_EQ(delivered_at.size(), 1u);
  // Path edge0 -> edge2 costs 6 ticks.
  EXPECT_EQ(delivered_at[0], 16u);
  EXPECT_EQ(fx.simulator.stats().packets_delivered, 1u);
}

TEST(Simulator, DropsTrafficToUnknownAddresses) {
  SimFixture fx;
  fx.simulator.send(0, {0, SimFixture::kClient, 0xdeadbeef, PacketType::kSyn});
  fx.simulator.run();
  EXPECT_EQ(fx.simulator.stats().packets_dropped, 1u);
  EXPECT_EQ(fx.simulator.stats().packets_delivered, 0u);
}

TEST(Simulator, IngressTapFiresExactlyOncePerPacket) {
  SimFixture fx;
  int ingress_count = 0, hop_count = 0;
  for (RouterId r = 0; r < fx.simulator.topology().num_routers(); ++r) {
    fx.simulator.add_ingress_tap(
        r, [&](RouterId, std::uint64_t, const Packet&) { ++ingress_count; });
    fx.simulator.add_tap(
        r, [&](RouterId, std::uint64_t, const Packet&) { ++hop_count; });
  }
  fx.simulator.send(0, {0, SimFixture::kClient, SimFixture::kServer,
                        PacketType::kSyn});
  fx.simulator.run();
  EXPECT_EQ(ingress_count, 1);  // once, at the injection router
  EXPECT_EQ(hop_count, 5);      // edge0, core0, core1, core2, edge2
}

TEST(Simulator, RejectsSchedulingInThePast) {
  SimFixture fx;
  fx.simulator.send(100, {100, SimFixture::kClient, SimFixture::kServer,
                          PacketType::kSyn});
  fx.simulator.run();
  EXPECT_THROW(fx.simulator.send(50, {50, SimFixture::kClient,
                                      SimFixture::kServer, PacketType::kSyn}),
               std::invalid_argument);
}

TEST(Simulator, SendRequiresAttachedSource) {
  SimFixture fx;
  EXPECT_THROW(
      fx.simulator.send(0, {0, 0xbadbad, SimFixture::kServer, PacketType::kSyn}),
      std::invalid_argument);
  // Spoofed injection works via send_from.
  EXPECT_NO_THROW(fx.simulator.send_from(
      0, 0, {0, 0xbadbad, SimFixture::kServer, PacketType::kSyn}));
}

// ------------------------- Emergent protocol dynamics --------------------

TEST(Agents, LegitimateHandshakeCompletes) {
  Topology topology;
  const auto edges = make_isp_topology(topology, 3);
  constexpr Addr kClient = 1000, kServer = 2000;
  topology.attach_host(kClient, edges[0]);
  topology.attach_host(kServer, edges[1]);
  Simulator simulator(std::move(topology));

  auto server = std::make_unique<ServerBehavior>(
      ServerBehavior::Config{.address = kServer});
  auto* server_ptr = server.get();
  simulator.set_behavior(kServer, std::move(server));
  auto client = std::make_unique<ClientBehavior>(
      ClientBehavior::Config{.address = kClient});
  auto* client_ptr = client.get();
  simulator.set_behavior(kClient, std::move(client));

  launch_session(simulator, 0, kClient, kServer);
  simulator.run();

  EXPECT_EQ(server_ptr->established(), 1u);
  EXPECT_EQ(server_ptr->half_open(), 0u);
  EXPECT_EQ(client_ptr->completed(), 1u);
}

TEST(Agents, SpoofedFloodLeavesHalfOpenBacklogAndBlackholedSynAcks) {
  Topology topology;
  const auto edges = make_isp_topology(topology, 3);
  constexpr Addr kServer = 2000;
  topology.attach_host(kServer, edges[1]);
  Simulator simulator(std::move(topology));

  auto server = std::make_unique<ServerBehavior>(
      ServerBehavior::Config{.address = kServer});
  auto* server_ptr = server.get();
  simulator.set_behavior(kServer, std::move(server));

  Xoshiro256 rng(7);
  const auto spoofed = launch_spoofed_flood(simulator, edges[2], kServer,
                                            /*start=*/0, /*duration=*/1000,
                                            /*count=*/500, /*salt=*/99, rng);
  simulator.run();

  EXPECT_EQ(spoofed.size(), 500u);
  EXPECT_EQ(server_ptr->half_open(), 500u);  // nothing ever completes
  EXPECT_EQ(server_ptr->established(), 0u);
  // Every SYN-ACK died at the victim's edge router.
  EXPECT_EQ(simulator.stats().packets_dropped, 500u);
}

TEST(Agents, BacklogExhaustionDeniesLegitimateClients) {
  // The attack's actual goal: with the backlog full of spoofed half-opens,
  // legitimate SYNs are rejected.
  Topology topology;
  const auto edges = make_isp_topology(topology, 3);
  constexpr Addr kServer = 2000, kClient = 1000;
  topology.attach_host(kServer, edges[1]);
  topology.attach_host(kClient, edges[0]);
  Simulator simulator(std::move(topology));

  auto server = std::make_unique<ServerBehavior>(ServerBehavior::Config{
      .address = kServer, .backlog_limit = 200});
  auto* server_ptr = server.get();
  simulator.set_behavior(kServer, std::move(server));
  auto client = std::make_unique<ClientBehavior>(
      ClientBehavior::Config{.address = kClient});
  auto* client_ptr = client.get();
  simulator.set_behavior(kClient, std::move(client));

  Xoshiro256 rng(3);
  launch_spoofed_flood(simulator, edges[2], kServer, 0, 100, 500, 42, rng);
  simulator.run(150);  // let the flood land first
  launch_session(simulator, 200, kClient, kServer);
  simulator.run();

  EXPECT_EQ(server_ptr->half_open(), 200u);      // backlog saturated
  EXPECT_GE(server_ptr->rejected_syns(), 300u);  // flood overflow...
  EXPECT_EQ(client_ptr->completed(), 0u);        // ...and the real client too
}

TEST(Simulator, DeterministicAcrossRuns) {
  const auto run_once = [] {
    Topology topology;
    const auto edges = make_isp_topology(topology, 4);
    constexpr Addr kServer = 2000;
    topology.attach_host(kServer, edges[1]);
    Simulator simulator(std::move(topology));
    auto server = std::make_unique<ServerBehavior>(
        ServerBehavior::Config{.address = kServer});
    auto* server_ptr = server.get();
    simulator.set_behavior(kServer, std::move(server));
    Xoshiro256 rng(11);
    launch_spoofed_flood(simulator, edges[3], kServer, 0, 500, 200, 5, rng);
    simulator.run();
    return std::make_tuple(simulator.stats().packets_sent,
                           simulator.stats().packets_dropped,
                           simulator.stats().hops_traversed,
                           server_ptr->half_open());
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace dcs::sim
