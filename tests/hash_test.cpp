// Tests for the seeded hash functions underlying the sketches: determinism,
// independence across seeds, uniformity of bucket hashes, and the geometric
// level distribution required by the first-level hash (paper §3).
#include "common/hash.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "common/random.hpp"

namespace dcs {
namespace {

TEST(Mix64, IsDeterministic) {
  EXPECT_EQ(mix64(42), mix64(42));
  EXPECT_EQ(fmix64(42), fmix64(42));
}

TEST(Mix64, ChangesEveryInput) {
  std::set<std::uint64_t> outputs;
  for (std::uint64_t x = 0; x < 10'000; ++x) outputs.insert(mix64(x));
  EXPECT_EQ(outputs.size(), 10'000u) << "mix64 collided on small inputs";
}

TEST(Mix64, AvalanchesSingleBitFlips) {
  // Flipping one input bit should flip roughly half the output bits.
  Xoshiro256 rng(7);
  double total_flips = 0.0;
  constexpr int kTrials = 2000;
  for (int t = 0; t < kTrials; ++t) {
    const std::uint64_t x = rng();
    const int bit = static_cast<int>(rng.bounded(64));
    total_flips += popcount64(mix64(x) ^ mix64(x ^ (1ULL << bit)));
  }
  const double mean_flips = total_flips / kTrials;
  EXPECT_NEAR(mean_flips, 32.0, 2.0);
}

TEST(SeededHash, DifferentSeedsDisagree) {
  SeededHash a(1), b(2);
  int agreements = 0;
  for (std::uint64_t x = 0; x < 1000; ++x)
    if (a(x) == b(x)) ++agreements;
  EXPECT_EQ(agreements, 0);
}

TEST(SeededHash, SameSeedAgrees) {
  SeededHash a(123), b(123);
  for (std::uint64_t x = 0; x < 1000; ++x) EXPECT_EQ(a(x), b(x));
}

TEST(ReduceRange, StaysInRange) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 100'000; ++i) {
    const std::uint32_t r = reduce_range(rng(), 128);
    EXPECT_LT(r, 128u);
  }
}

TEST(ReduceRange, IsRoughlyUniform) {
  constexpr std::uint32_t kRange = 64;
  constexpr int kSamples = 640'000;
  std::vector<int> histogram(kRange, 0);
  Xoshiro256 rng(11);
  for (int i = 0; i < kSamples; ++i) ++histogram[reduce_range(rng(), kRange)];
  const double expected = static_cast<double>(kSamples) / kRange;
  double chi2 = 0.0;
  for (const int count : histogram) {
    const double diff = count - expected;
    chi2 += diff * diff / expected;
  }
  // 63 degrees of freedom; 99.9th percentile is ~103.4.
  EXPECT_LT(chi2, 110.0);
}

TEST(LevelHash, GeometricDistribution) {
  LevelHash level(42, 63);
  constexpr int kSamples = 1 << 20;
  std::vector<int> histogram(64, 0);
  for (int i = 0; i < kSamples; ++i) ++histogram[level(static_cast<std::uint64_t>(i))];
  // Pr[level = l] = 2^-(l+1): check the first few levels within 5% relative.
  for (int l = 0; l < 6; ++l) {
    const double expected = kSamples * std::pow(2.0, -(l + 1));
    EXPECT_NEAR(histogram[l], expected, 0.05 * expected) << "level " << l;
  }
}

TEST(LevelHash, RespectsMaxLevel) {
  LevelHash level(42, 5);
  for (std::uint64_t x = 0; x < 100'000; ++x) {
    const int l = level(x);
    EXPECT_GE(l, 0);
    EXPECT_LE(l, 5);
  }
}

TEST(LevelHash, DeterministicPerSeed) {
  LevelHash a(9, 63), b(9, 63);
  for (std::uint64_t x = 0; x < 10'000; ++x) EXPECT_EQ(a(x), b(x));
}

TEST(BucketHashFamily, TablesAreIndependent) {
  BucketHashFamily family(5, 3, 128);
  // Two distinct tables should rarely agree on the bucket of the same key:
  // expected agreement rate 1/128.
  int agreements = 0;
  constexpr int kSamples = 100'000;
  for (std::uint64_t x = 0; x < kSamples; ++x)
    if (family.bucket(0, x) == family.bucket(1, x)) ++agreements;
  const double rate = static_cast<double>(agreements) / kSamples;
  EXPECT_NEAR(rate, 1.0 / 128.0, 0.002);
}

TEST(BucketHashFamily, CoversAllBuckets) {
  BucketHashFamily family(5, 1, 64);
  std::set<std::uint32_t> seen;
  for (std::uint64_t x = 0; x < 10'000; ++x) seen.insert(family.bucket(0, x));
  EXPECT_EQ(seen.size(), 64u);
}

TEST(Xoshiro, BoundedStaysInBounds) {
  Xoshiro256 rng(1);
  for (int i = 0; i < 100'000; ++i) EXPECT_LT(rng.bounded(17), 17u);
}

TEST(Xoshiro, UniformIsInUnitInterval) {
  Xoshiro256 rng(1);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Xoshiro, MeanIsHalf) {
  Xoshiro256 rng(123);
  double sum = 0.0;
  constexpr int kSamples = 1'000'000;
  for (int i = 0; i < kSamples; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kSamples, 0.5, 0.002);
}

}  // namespace
}  // namespace dcs
