# Live ops-plane probe — runs *concurrently* with a dcs_collector that is
# mid-ingest (see service_smoke.cmake), so every assertion here is against a
# server answering while deltas are actively merging:
#   * /healthz answers and reports a running collector,
#   * /metrics is well-formed Prometheus text and carries the
#     dcs_trace_stage_ns family for every pipeline stage plus
#     dcs_detection_freshness_ns with nonzero count,
#   * /traces contains at least one complete epoch trace.
# Fetches via curl when available, else CMake's file(DOWNLOAD).
#
# Inputs: -DOPS_PORT_FILE=<path the collector publishes its ops port to>
#         -DOUT_DIR=<scratch directory for fetched payloads>
find_program(CURL_EXE curl)

function(fetch path out_var)
  set(url "http://127.0.0.1:${ops_port}${path}")
  string(MAKE_C_IDENTIFIER "${path}" slug)
  set(out_file ${OUT_DIR}/probe${slug})
  file(REMOVE ${out_file})
  if(CURL_EXE)
    execute_process(COMMAND ${CURL_EXE} -s -S -m 5 -o ${out_file} ${url}
      RESULT_VARIABLE rc ERROR_VARIABLE fetch_err)
  else()
    file(DOWNLOAD ${url} ${out_file} TIMEOUT 5 STATUS status)
    list(GET status 0 rc)
    list(GET status 1 fetch_err)
  endif()
  if(NOT rc EQUAL 0 OR NOT EXISTS ${out_file})
    set(${out_var} "" PARENT_SCOPE)
    return()
  endif()
  file(READ ${out_file} text)
  set(${out_var} "${text}" PARENT_SCOPE)
endfunction()

# The collector publishes the ops port atomically once its server is up.
set(waited 0)
while(NOT EXISTS ${OPS_PORT_FILE})
  if(waited GREATER 300)
    message(FATAL_ERROR "ops_probe: ${OPS_PORT_FILE} never appeared")
  endif()
  execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.1)
  math(EXPR waited "${waited} + 1")
endwhile()
file(READ ${OPS_PORT_FILE} ops_port)
string(STRIP "${ops_port}" ops_port)

# Poll until the pipeline has demonstrably moved an epoch end to end: the
# freshness SLO histogram has counted at least one merge and the trace ring
# holds a complete trace. Everything after the loop asserts on the payloads
# captured while ingest was still running.
set(metrics "")
set(traces "")
set(waited 0)
while(1)
  fetch("/metrics" metrics)
  fetch("/traces" traces)
  if(metrics MATCHES "dcs_detection_freshness_ns_count [1-9]"
     AND traces MATCHES "\"complete\": true")
    break()
  endif()
  if(waited GREATER 300)
    message(FATAL_ERROR "ops_probe: no complete trace after 30s;"
      " /metrics:\n${metrics}\n/traces:\n${traces}")
  endif()
  execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.1)
  math(EXPR waited "${waited} + 1")
endwhile()

# Liveness endpoint: running, JSON-shaped.
fetch("/healthz" healthz)
foreach(needle "\"status\": \"ok\"" "\"running\": true" "\"deltas_merged\":")
  if(NOT healthz MATCHES "${needle}")
    message(FATAL_ERROR "ops_probe: /healthz missing '${needle}':\n${healthz}")
  endif()
endforeach()

# Per-site table: the shipping site must be present with a live watermark.
fetch("/sites" sites)
if(NOT sites MATCHES "\"site_id\": 9[^0-9]" OR NOT sites MATCHES "\"last_epoch\":")
  message(FATAL_ERROR "ops_probe: /sites missing the live site:\n${sites}")
endif()

# Every pipeline stage family must be listed (count may be 0 for the
# agent-side stages — this scrape is the collector's).
foreach(stage sealed spooled shipped received admitted journaled merged
        detector_evaluated)
  if(NOT metrics MATCHES "dcs_trace_stage_ns_count\\{stage=\"${stage}\"\\}")
    message(FATAL_ERROR "ops_probe: /metrics missing stage '${stage}':\n"
      "${metrics}")
  endif()
endforeach()

# The collector-side stages must actually have counted something.
foreach(stage received admitted merged detector_evaluated)
  if(NOT metrics MATCHES "dcs_trace_stage_ns_count\\{stage=\"${stage}\"\\} [1-9]")
    message(FATAL_ERROR "ops_probe: stage '${stage}' never observed:\n"
      "${metrics}")
  endif()
endforeach()

# Prometheus text-format sanity: every line is a comment or
# `name[{labels}] value`. Semicolons inside HELP text would split a single
# line into several list items, so neutralize them before splitting.
string(REPLACE ";" ","  metric_lines "${metrics}")
string(REPLACE "\n" ";" metric_lines "${metric_lines}")
foreach(line ${metric_lines})
  if(line MATCHES "^#")
    continue()
  endif()
  if(NOT line MATCHES "^[a-zA-Z_][a-zA-Z0-9_]*(\\{[^{}]*\\})? -?[0-9]+$")
    message(FATAL_ERROR "ops_probe: malformed Prometheus line '${line}'")
  endif()
endforeach()

message(STATUS "ops_probe: live scrape OK (freshness counted, trace complete)")
