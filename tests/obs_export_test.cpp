// Golden-file tests for the Prometheus text-exposition and JSON snapshot
// renderers (obs/export.hpp), plus label escaping and format parsing.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "gtest/gtest.h"
#include "obs/export.hpp"
#include "obs/metrics.hpp"

namespace dcs::obs {
namespace {

class ObsExportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = enabled();
    set_enabled(true);
    // The golden fixtures mutate through the gated API, which no-ops when
    // telemetry is compiled out.
    if (!recording()) GTEST_SKIP() << "telemetry compiled out";
  }
  void TearDown() override { set_enabled(was_enabled_); }

  /// One of each metric kind, with a labeled counter variant — the fixture
  /// behind both golden strings. (Registry is non-movable, so the caller
  /// owns it and we fill it in place.)
  static void populate(Registry& registry) {
    registry.counter("t_events_total", "Events").inc(5);
    registry.counter("t_events_total", "Events", {{"class", "a"}}).inc(2);
    registry.gauge("t_queue_depth", "Queue depth").set(-3);
    Histogram& latency = registry.histogram("t_latency_ns", "Latency");
    latency.observe(0);    // bucket 0 (le 0)
    latency.observe(1);    // bucket 1 (le 1)
    latency.observe(1);
    latency.observe(100);  // bucket 7 (le 127)
  }

 private:
  bool was_enabled_ = true;
};

TEST_F(ObsExportTest, ParseFormat) {
  EXPECT_EQ(parse_format("prom"), ExportFormat::kPrometheus);
  EXPECT_EQ(parse_format("prometheus"), ExportFormat::kPrometheus);
  EXPECT_EQ(parse_format("json"), ExportFormat::kJson);
  EXPECT_THROW(parse_format("xml"), std::invalid_argument);
}

TEST_F(ObsExportTest, PrometheusGolden) {
  Registry registry;
  populate(registry);
  const std::string expected =
      "# HELP t_events_total Events\n"
      "# TYPE t_events_total counter\n"
      "t_events_total 5\n"
      "t_events_total{class=\"a\"} 2\n"
      "# HELP t_queue_depth Queue depth\n"
      "# TYPE t_queue_depth gauge\n"
      "t_queue_depth -3\n"
      "# HELP t_latency_ns Latency\n"
      "# TYPE t_latency_ns histogram\n"
      "t_latency_ns_bucket{le=\"0\"} 1\n"
      "t_latency_ns_bucket{le=\"1\"} 3\n"
      "t_latency_ns_bucket{le=\"127\"} 4\n"
      "t_latency_ns_bucket{le=\"+Inf\"} 4\n"
      "t_latency_ns_sum 102\n"
      "t_latency_ns_count 4\n";
  EXPECT_EQ(to_prometheus(registry.snapshot()), expected);
  EXPECT_EQ(render(registry.snapshot(), ExportFormat::kPrometheus), expected);
}

TEST_F(ObsExportTest, JsonGolden) {
  Registry registry;
  populate(registry);
  // Quantiles of {0, 1, 1, 100}: p50 lands exactly on 1; p90/p99
  // interpolate inside the [64, 127] bucket.
  const std::string expected =
      "{\n"
      "  \"counters\": [\n"
      "    {\"name\":\"t_events_total\",\"labels\":{},\"value\":5},\n"
      "    {\"name\":\"t_events_total\",\"labels\":{\"class\":\"a\"},"
      "\"value\":2}\n"
      "  ],\n"
      "  \"gauges\": [\n"
      "    {\"name\":\"t_queue_depth\",\"labels\":{},\"value\":-3}\n"
      "  ],\n"
      "  \"histograms\": [\n"
      "    {\"name\":\"t_latency_ns\",\"labels\":{},\"count\":4,\"sum\":102,"
      "\"p50\":1.0,\"p90\":101.8,\"p99\":124.5,\"buckets\":["
      "{\"le\":0,\"count\":1},{\"le\":1,\"count\":2},"
      "{\"le\":127,\"count\":1}]}\n"
      "  ]\n"
      "}\n";
  EXPECT_EQ(to_json(registry.snapshot()), expected);
}

TEST_F(ObsExportTest, EmptySnapshotRenders) {
  const Registry registry;
  EXPECT_EQ(to_prometheus(registry.snapshot()), "");
  EXPECT_EQ(to_json(registry.snapshot()),
            "{\n  \"counters\": [],\n  \"gauges\": [],\n"
            "  \"histograms\": []\n}\n");
}

TEST_F(ObsExportTest, LabelEscaping) {
  Registry registry;
  registry
      .counter("esc_total", "Escapes", {{"path", "a\\b\"c\nd"}})
      .inc(1);
  const std::string prom = to_prometheus(registry.snapshot());
  EXPECT_NE(prom.find("esc_total{path=\"a\\\\b\\\"c\\nd\"} 1\n"),
            std::string::npos)
      << prom;
  const std::string json = to_json(registry.snapshot());
  EXPECT_NE(json.find("\"path\":\"a\\\\b\\\"c\\nd\""), std::string::npos)
      << json;
}

TEST_F(ObsExportTest, JsonEscapeControlCharacters) {
  EXPECT_EQ(json_escape("tab\there"), "tab\\there");
  EXPECT_EQ(json_escape(std::string("nul\x01") + "x"), "nul\\u0001x");
  EXPECT_EQ(json_escape("plain"), "plain");
}

TEST_F(ObsExportTest, WriteSnapshotFileRoundTrips) {
  Registry registry;
  populate(registry);
  const std::string path =
      ::testing::TempDir() + "/obs_export_test_metrics.prom";
  write_snapshot_file(path, ExportFormat::kPrometheus, registry.snapshot());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream contents;
  contents << in.rdbuf();
  EXPECT_EQ(contents.str(), to_prometheus(registry.snapshot()));
  // Re-writing truncates rather than appends.
  write_snapshot_file(path, ExportFormat::kPrometheus, registry.snapshot());
  std::ifstream again(path);
  std::stringstream second;
  second << again.rdbuf();
  EXPECT_EQ(second.str(), contents.str());
  std::remove(path.c_str());

  EXPECT_THROW(write_snapshot_file("/nonexistent-dir/x/y.prom",
                                   ExportFormat::kPrometheus,
                                   registry.snapshot()),
               std::runtime_error);
}

}  // namespace
}  // namespace dcs::obs
