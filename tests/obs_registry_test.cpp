// Semantics of the telemetry primitives (obs/metrics.hpp): counters, gauges,
// log2 histograms, the runtime enable switch, and Registry find-or-create —
// single-threaded contracts plus a multi-threaded hammer over the lock-free
// mutation paths.
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/metrics.hpp"

namespace dcs::obs {
namespace {

/// Every test runs with recording on and restores the prior switch state,
/// so ordering between tests (and other suites) doesn't leak. When
/// telemetry is compiled out (DCS_OBS_ENABLE=OFF) the gated mutators are
/// no-ops by design, so the suite skips.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = enabled();
    set_enabled(true);
    if (!recording()) GTEST_SKIP() << "telemetry compiled out";
  }
  void TearDown() override { set_enabled(was_enabled_); }

 private:
  bool was_enabled_ = true;
};

using ObsRegistryTest = ObsTest;

TEST_F(ObsTest, CounterIncrementsAndResets) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.inc();
  counter.inc(41);
  EXPECT_EQ(counter.value(), 42u);
  counter.reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST_F(ObsTest, GaugeSetAndAdd) {
  Gauge gauge;
  gauge.set(7);
  EXPECT_EQ(gauge.value(), 7);
  gauge.add(-10);
  EXPECT_EQ(gauge.value(), -3);
  gauge.reset();
  EXPECT_EQ(gauge.value(), 0);
}

TEST_F(ObsTest, RuntimeSwitchGatesMutations) {
  Counter counter;
  Gauge gauge;
  Histogram histogram;
  set_enabled(false);
  EXPECT_FALSE(recording());
  counter.inc(5);
  gauge.set(5);
  histogram.observe(5);
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(gauge.value(), 0);
  EXPECT_EQ(histogram.snapshot().count, 0u);
  // record() deliberately bypasses the switch (harness use).
  histogram.record(5);
  EXPECT_EQ(histogram.snapshot().count, 1u);
  set_enabled(true);
  counter.inc(5);
  EXPECT_EQ(counter.value(), 5u);
}

TEST_F(ObsTest, HistogramBucketBoundaries) {
  // Bucket i covers [2^(i-1), 2^i - 1]; bucket 0 holds exactly 0.
  EXPECT_EQ(Histogram::bucket_of(0), 0);
  EXPECT_EQ(Histogram::bucket_of(1), 1);
  EXPECT_EQ(Histogram::bucket_of(2), 2);
  EXPECT_EQ(Histogram::bucket_of(3), 2);
  EXPECT_EQ(Histogram::bucket_of(4), 3);
  EXPECT_EQ(Histogram::bucket_of(1023), 10);
  EXPECT_EQ(Histogram::bucket_of(1024), 11);
  EXPECT_EQ(Histogram::bucket_of(UINT64_MAX), Histogram::kBuckets - 1);

  EXPECT_EQ(HistogramSnapshot::upper_bound(0), 0u);
  EXPECT_EQ(HistogramSnapshot::upper_bound(1), 1u);
  EXPECT_EQ(HistogramSnapshot::upper_bound(2), 3u);
  EXPECT_EQ(HistogramSnapshot::upper_bound(10), 1023u);
  EXPECT_EQ(HistogramSnapshot::upper_bound(HistogramSnapshot::kBuckets - 1),
            UINT64_MAX);
  // Every finite value maps into the bucket whose bound covers it.
  for (const std::uint64_t v : {0ull, 1ull, 7ull, 100ull, 65536ull}) {
    const int b = Histogram::bucket_of(v);
    EXPECT_LE(v, HistogramSnapshot::upper_bound(b)) << v;
    if (b > 0) EXPECT_GT(v, HistogramSnapshot::upper_bound(b - 1)) << v;
  }
}

TEST_F(ObsTest, HistogramSnapshotAndQuantiles) {
  Histogram histogram;
  EXPECT_DOUBLE_EQ(histogram.snapshot().quantile(0.5), 0.0);  // empty
  for (int i = 0; i < 100; ++i) histogram.observe(100);
  histogram.observe(100'000);
  const HistogramSnapshot snap = histogram.snapshot();
  EXPECT_EQ(snap.count, 101u);
  EXPECT_EQ(snap.sum, 100u * 100u + 100'000u);
  EXPECT_NEAR(snap.mean(), (10'000.0 + 100'000.0) / 101.0, 1e-9);
  // p50 stays inside the bucket holding 100 ([64, 127]); p99+ may reach the
  // outlier's bucket. Quantiles are monotone in q.
  const double p50 = snap.quantile(0.50);
  EXPECT_GE(p50, 64.0);
  EXPECT_LE(p50, 127.0);
  EXPECT_LE(snap.quantile(0.50), snap.quantile(0.90));
  EXPECT_LE(snap.quantile(0.90), snap.quantile(0.99));
  EXPECT_LE(snap.quantile(0.99), snap.quantile(1.0));
  histogram.reset();
  EXPECT_EQ(histogram.snapshot().count, 0u);
}

TEST_F(ObsRegistryTest, FindOrCreateReturnsStableReferences) {
  Registry registry;
  Counter& a = registry.counter("events_total", "Events");
  Counter& b = registry.counter("events_total", "Events");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(registry.size(), 1u);
  // A different label set is a different metric.
  Counter& labeled =
      registry.counter("events_total", "Events", {{"class", "x"}});
  EXPECT_NE(&a, &labeled);
  EXPECT_EQ(registry.size(), 2u);
  registry.gauge("depth", "Depth");
  registry.histogram("latency_ns", "Latency");
  EXPECT_EQ(registry.size(), 4u);
}

TEST_F(ObsRegistryTest, TypeMismatchThrows) {
  Registry registry;
  registry.counter("metric", "A metric");
  EXPECT_THROW(registry.gauge("metric", "A metric"), std::invalid_argument);
  EXPECT_THROW(registry.histogram("metric", "A metric"),
               std::invalid_argument);
}

TEST_F(ObsRegistryTest, SnapshotIsSortedAndPointInTime) {
  Registry registry;
  Counter& zeta = registry.counter("zeta_total", "Z");
  Counter& alpha = registry.counter("alpha_total", "A");
  Counter& beta_b = registry.counter("beta_total", "B", {{"k", "b"}});
  Counter& beta_a = registry.counter("beta_total", "B", {{"k", "a"}});
  zeta.inc(1);
  alpha.inc(2);
  beta_b.inc(3);
  beta_a.inc(4);

  const Snapshot snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 4u);
  EXPECT_EQ(snap.counters[0].id.name, "alpha_total");
  EXPECT_EQ(snap.counters[1].id.name, "beta_total");
  EXPECT_EQ(snap.counters[1].id.labels, (Labels{{"k", "a"}}));
  EXPECT_EQ(snap.counters[2].id.labels, (Labels{{"k", "b"}}));
  EXPECT_EQ(snap.counters[3].id.name, "zeta_total");
  EXPECT_EQ(snap.counters[3].value, 1u);

  // Later mutations don't show up in an already-taken snapshot.
  alpha.inc(100);
  EXPECT_EQ(snap.counters[0].value, 2u);
}

TEST_F(ObsRegistryTest, ResetValuesKeepsReferencesValid) {
  Registry registry;
  Counter& counter = registry.counter("events_total", "Events");
  Histogram& histogram = registry.histogram("latency_ns", "Latency");
  counter.inc(9);
  histogram.observe(9);
  registry.reset_values();
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(histogram.snapshot().count, 0u);
  counter.inc();
  EXPECT_EQ(counter.value(), 1u);
  EXPECT_EQ(registry.size(), 2u);
}

TEST_F(ObsRegistryTest, MultithreadedHammerCountsExactly) {
  Registry registry;
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 50'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      // Mixed registration + mutation: find-or-create must be safe to race
      // and always hand every thread the same instances.
      Counter& counter = registry.counter("hammer_total", "Hammer");
      Gauge& gauge = registry.gauge("hammer_depth", "Depth");
      Histogram& histogram = registry.histogram("hammer_ns", "Latency");
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        counter.inc();
        gauge.add(1);
        histogram.observe(i & 0xFFF);
        if ((i & 0x3FF) == 0) (void)registry.snapshot();
      }
      (void)t;
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(registry.counter("hammer_total", "Hammer").value(),
            kThreads * kPerThread);
  EXPECT_EQ(registry.gauge("hammer_depth", "Depth").value(),
            static_cast<std::int64_t>(kThreads * kPerThread));
  const HistogramSnapshot hist =
      registry.histogram("hammer_ns", "Latency").snapshot();
  EXPECT_EQ(hist.count, kThreads * kPerThread);
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t b : hist.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, hist.count);
  EXPECT_EQ(registry.size(), 3u);
}

}  // namespace
}  // namespace dcs::obs
