// Tests for alert scoring against ground-truth attack windows.
#include "metrics/detection_metrics.hpp"

#include <gtest/gtest.h>

namespace dcs {
namespace {

Alert raised(Addr subject, std::uint64_t position) {
  Alert alert;
  alert.kind = Alert::Kind::kRaised;
  alert.subject = subject;
  alert.stream_position = position;
  return alert;
}

Alert cleared(Addr subject, std::uint64_t position) {
  Alert alert = raised(subject, position);
  alert.kind = Alert::Kind::kCleared;
  return alert;
}

TEST(DetectionMetrics, PerfectDetection) {
  const std::vector<AttackWindow> attacks{{0xa, 1000, 5000}};
  const std::vector<Alert> alerts{raised(0xa, 1600)};
  const DetectionScore score = score_alerts(alerts, attacks);
  EXPECT_EQ(score.true_positives, 1u);
  EXPECT_EQ(score.false_negatives, 0u);
  EXPECT_EQ(score.false_positives, 0u);
  EXPECT_DOUBLE_EQ(score.mean_detection_latency, 600.0);
  EXPECT_DOUBLE_EQ(score.recall(), 1.0);
}

TEST(DetectionMetrics, MissedAttackIsFalseNegative) {
  const std::vector<AttackWindow> attacks{{0xa, 0, 100}, {0xb, 0, 100}};
  const std::vector<Alert> alerts{raised(0xa, 50)};
  const DetectionScore score = score_alerts(alerts, attacks);
  EXPECT_EQ(score.true_positives, 1u);
  EXPECT_EQ(score.false_negatives, 1u);
  EXPECT_DOUBLE_EQ(score.recall(), 0.5);
}

TEST(DetectionMetrics, UnrelatedAlertIsFalsePositive) {
  const std::vector<AttackWindow> attacks{{0xa, 0, 100}};
  const std::vector<Alert> alerts{raised(0xbad, 10)};
  const DetectionScore score = score_alerts(alerts, attacks);
  EXPECT_EQ(score.false_positives, 1u);
  EXPECT_EQ(score.true_positives, 0u);
}

TEST(DetectionMetrics, AlertBeforeWindowIsFalsePositive) {
  const std::vector<AttackWindow> attacks{{0xa, 1000, 2000}};
  const std::vector<Alert> alerts{raised(0xa, 500)};
  const DetectionScore score = score_alerts(alerts, attacks);
  EXPECT_EQ(score.false_positives, 1u);
  EXPECT_EQ(score.false_negatives, 1u);
}

TEST(DetectionMetrics, RepeatedRaisesCountOnceWithFirstLatency) {
  const std::vector<AttackWindow> attacks{{0xa, 100, 10'000}};
  const std::vector<Alert> alerts{raised(0xa, 300), raised(0xa, 900)};
  const DetectionScore score = score_alerts(alerts, attacks);
  EXPECT_EQ(score.true_positives, 1u);
  EXPECT_EQ(score.false_positives, 0u);
  EXPECT_DOUBLE_EQ(score.mean_detection_latency, 200.0);
}

TEST(DetectionMetrics, ClearedAlertsAreIgnored) {
  const std::vector<AttackWindow> attacks{{0xa, 0, 100}};
  const std::vector<Alert> alerts{cleared(0xa, 50)};
  const DetectionScore score = score_alerts(alerts, attacks);
  EXPECT_EQ(score.true_positives, 0u);
  EXPECT_EQ(score.false_positives, 0u);
}

TEST(DetectionMetrics, EmptyInputs) {
  EXPECT_EQ(score_alerts({}, {}).recall(), 0.0);
  const DetectionScore score = score_alerts({}, {{0xa, 0, 1}});
  EXPECT_EQ(score.false_negatives, 1u);
}

TEST(DetectionMetrics, LatencyAveragesOverDetectedAttacks) {
  const std::vector<AttackWindow> attacks{{0xa, 100, 1000}, {0xb, 200, 1000}};
  const std::vector<Alert> alerts{raised(0xa, 300), raised(0xb, 600)};
  const DetectionScore score = score_alerts(alerts, attacks);
  EXPECT_DOUBLE_EQ(score.mean_detection_latency, (200.0 + 400.0) / 2.0);
}

}  // namespace
}  // namespace dcs
