// CRC-32 integrity footer on serialized sketch blobs: a clean round trip
// succeeds, any single bit flip or truncation is rejected with
// SerializeError, and the checksum primitive matches its published test
// vector.
#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <string>

#include "common/serialize.hpp"
#include "sketch/distinct_count_sketch.hpp"
#include "stream/generator.hpp"

namespace dcs {
namespace {

DistinctCountSketch populated_sketch() {
  DcsParams params;
  params.num_tables = 3;
  params.buckets_per_table = 64;
  params.seed = 17;
  DistinctCountSketch sketch(params);
  ZipfWorkloadConfig config;
  config.u_pairs = 2000;
  config.num_destinations = 50;
  config.seed = 5;
  for (const FlowUpdate& u : ZipfWorkload(config).updates())
    sketch.update(u.dest, u.source, u.delta);
  return sketch;
}

std::string serialized(const DistinctCountSketch& sketch) {
  std::ostringstream out(std::ios::binary);
  BinaryWriter writer(out);
  sketch.serialize(writer);
  return out.str();
}

TEST(SerializeCrc, Crc32MatchesKnownVector) {
  // The canonical IEEE CRC-32 check value.
  EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(crc32("", 0), 0u);
  // Running continuation equals one-shot computation.
  const std::uint32_t first = crc32("1234", 4);
  EXPECT_EQ(crc32("56789", 5, first), 0xCBF43926u);
}

TEST(SerializeCrc, CleanRoundTrip) {
  const DistinctCountSketch original = populated_sketch();
  std::istringstream in(serialized(original), std::ios::binary);
  BinaryReader reader(in);
  const DistinctCountSketch restored = DistinctCountSketch::deserialize(reader);
  EXPECT_TRUE(original == restored);
}

TEST(SerializeCrc, EveryRegionRejectsBitFlips) {
  const std::string blob = serialized(populated_sketch());
  ASSERT_GT(blob.size(), 64u);
  // Flip one bit in several positions spread across the blob: params region,
  // counter payload, and the footer itself. The magic/version bytes already
  // fail the header check; everything else must fail the CRC.
  for (const std::size_t pos :
       {std::size_t{6}, blob.size() / 2, blob.size() - 6, blob.size() - 1}) {
    std::string corrupted = blob;
    corrupted[pos] = static_cast<char>(corrupted[pos] ^ 0x10);
    std::istringstream in(corrupted, std::ios::binary);
    BinaryReader reader(in);
    EXPECT_THROW(DistinctCountSketch::deserialize(reader), SerializeError)
        << "bit flip at offset " << pos << " was not detected";
  }
}

TEST(SerializeCrc, RejectsTruncation) {
  const std::string blob = serialized(populated_sketch());
  for (const std::size_t keep : {blob.size() - 1, blob.size() - 4, blob.size() / 2}) {
    std::istringstream in(blob.substr(0, keep), std::ios::binary);
    BinaryReader reader(in);
    EXPECT_THROW(DistinctCountSketch::deserialize(reader), SerializeError)
        << "truncation to " << keep << " bytes was not detected";
  }
}

TEST(SerializeCrc, RejectsBadMagic) {
  std::string blob = serialized(populated_sketch());
  blob[0] = 'X';
  std::istringstream in(blob, std::ios::binary);
  BinaryReader reader(in);
  EXPECT_THROW(DistinctCountSketch::deserialize(reader), SerializeError);
}

TEST(SerializeCrc, WriterReaderRunningCrcAgree) {
  std::ostringstream out(std::ios::binary);
  BinaryWriter writer(out);
  writer.crc_reset();
  writer.u64(0xdeadbeefcafef00dULL);
  writer.str("distinct-count");
  const std::uint32_t written_crc = writer.crc();

  std::istringstream in(out.str(), std::ios::binary);
  BinaryReader reader(in);
  reader.crc_reset();
  (void)reader.u64();
  (void)reader.str();
  EXPECT_EQ(reader.crc(), written_crc);
}

}  // namespace
}  // namespace dcs
