# Loopback smoke test for the sketch-shipping tools: four dcs_agent
# processes and one dcs_collector started concurrently, coordinated through
# --port-file (the collector binds an ephemeral port and publishes it).
# Invoked by ctest (see CMakeLists.txt).
#
# execute_process runs its COMMANDs as one concurrent pipeline; the
# collector is listed last so OUTPUT_VARIABLE captures *its* stdout, and
# RESULTS_VARIABLE yields every process's exit status.
file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})
set(port_file ${WORK_DIR}/collector.port)

set(agent_args --port-file ${port_file} --u 4000 --d 50 --epoch-updates 1000)
execute_process(
  COMMAND ${DCS_AGENT} --site 1 ${agent_args}
  COMMAND ${DCS_AGENT} --site 2 ${agent_args}
  COMMAND ${DCS_AGENT} --site 3 ${agent_args}
  COMMAND ${DCS_AGENT} --site 4 ${agent_args}
  COMMAND ${DCS_COLLECTOR} --port-file ${port_file} --sites 4
          --timeout-ms 60000 --metrics-out ${WORK_DIR}/metrics.prom
  WORKING_DIRECTORY ${WORK_DIR}
  OUTPUT_VARIABLE collector_out
  ERROR_VARIABLE err_out
  RESULTS_VARIABLE statuses
  TIMEOUT 90)

foreach(status ${statuses})
  if(NOT status EQUAL 0)
    message(FATAL_ERROR "service_smoke: a process failed (${statuses}):\n"
      "${collector_out}\n${err_out}")
  endif()
endforeach()

# All four sites must have said Bye, every delta merged exactly once, and
# no frame or epoch ever lost on a healthy loopback. Duplicates are allowed
# (not asserted zero): under sanitizer slowdowns an agent can hit its ack
# deadline and retransmit — dedup is exactly what deltas=16 then proves.
foreach(needle
    "byes=4 deltas=16 duplicates=[0-9]+ dropped=0 frame_errors=0 rejected=0"
    "site=1 epochs=4 updates=4000 dropped=0 last_epoch=4"
    "site=4 epochs=4 updates=4000 dropped=0 last_epoch=4"
    " 1  dest=")
  if(NOT collector_out MATCHES "${needle}")
    message(FATAL_ERROR "service_smoke: collector output missing "
      "'${needle}':\n${collector_out}\n${err_out}")
  endif()
endforeach()

# The collector's metric snapshot must carry the service counters.
file(READ ${WORK_DIR}/metrics.prom prom_text)
foreach(needle
    "dcs_collector_deltas_total 16"
    "dcs_collector_frame_errors_total 0"
    "# TYPE dcs_collector_merge_latency_ns histogram")
  if(NOT prom_text MATCHES "${needle}")
    message(FATAL_ERROR "service_smoke: metrics.prom missing "
      "'${needle}':\n${prom_text}")
  endif()
endforeach()

message(STATUS "service_smoke: 4 agents, 16 deltas, clean merge")

# --- Phase 2: live ops-plane scrape mid-ingest ------------------------------
# A fresh collector with the embedded HTTP ops server and one deliberately
# heavy agent (~98 epochs) keep ingest running for several seconds while
# ops_probe.cmake — the third member of the concurrent pipeline — curls
# /healthz, /metrics, /sites and /traces and asserts on what a live scrape
# must show (all stage histogram families, a nonzero freshness count, at
# least one complete epoch trace). The periodic --metrics-every flush is on
# so the probe's success also implies the scrape-less fallback ran.
set(ops_port_file ${WORK_DIR}/ops.port)
set(live_port_file ${WORK_DIR}/live_collector.port)
execute_process(
  COMMAND ${DCS_AGENT} --site 9 --port-file ${live_port_file}
          --u 200000 --d 50 --epoch-updates 2048
  COMMAND ${DCS_COLLECTOR} --port-file ${live_port_file} --sites 1
          --timeout-ms 60000 --ops-port 0 --ops-port-file ${ops_port_file}
          --metrics-out ${WORK_DIR}/live_metrics.prom --metrics-every 1
  COMMAND ${CMAKE_COMMAND} -DOPS_PORT_FILE=${ops_port_file}
          -DOUT_DIR=${WORK_DIR}
          -P ${CMAKE_CURRENT_LIST_DIR}/ops_probe.cmake
  WORKING_DIRECTORY ${WORK_DIR}
  OUTPUT_VARIABLE live_out
  ERROR_VARIABLE live_err
  RESULTS_VARIABLE live_statuses
  TIMEOUT 90)

foreach(status ${live_statuses})
  if(NOT status EQUAL 0)
    message(FATAL_ERROR "service_smoke: live ops phase failed "
      "(${live_statuses}):\n${live_out}\n${live_err}")
  endif()
endforeach()

# The periodic flusher must have left a readable snapshot behind even
# before the clean-exit write (same path, so just assert it parses).
file(READ ${WORK_DIR}/live_metrics.prom live_prom)
if(NOT live_prom MATCHES "dcs_detection_freshness_ns_count [1-9]")
  message(FATAL_ERROR "service_smoke: live_metrics.prom missing freshness "
    "counts:\n${live_prom}")
endif()

message(STATUS "service_smoke: live ops plane scraped mid-ingest")
