// Parameterized property sweeps across sketch configurations: the core
// invariants must hold for every (r, s) combination, every churn level, and
// under adversarial (contract-violating) streams.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <tuple>
#include <unordered_set>

#include "common/random.hpp"
#include "sketch/distinct_count_sketch.hpp"
#include "sketch/tracking_dcs.hpp"
#include "stream/generator.hpp"

namespace dcs {
namespace {

// ---------------------------------------------------------------------------
// Grid 1: delete-equivalence for every (r, s, churn) combination.
// ---------------------------------------------------------------------------
using RsChurn = std::tuple<int, std::uint32_t, std::uint32_t>;

class DeleteEquivalenceGrid : public ::testing::TestWithParam<RsChurn> {};

TEST_P(DeleteEquivalenceGrid, ChurnedStreamYieldsIdenticalSketch) {
  const auto [r, s, churn] = GetParam();
  ZipfWorkloadConfig clean_config;
  clean_config.u_pairs = 5000;
  clean_config.num_destinations = 100;
  clean_config.skew = 1.3;
  clean_config.shuffle = false;
  ZipfWorkloadConfig churned_config = clean_config;
  churned_config.churn = churn;
  churned_config.noise_pairs = 2000;
  churned_config.shuffle = true;

  DcsParams params;
  params.num_tables = r;
  params.buckets_per_table = s;
  params.seed = 7;

  DistinctCountSketch clean(params), churned(params);
  const ZipfWorkload clean_workload(clean_config);
  for (const FlowUpdate& u : clean_workload.updates())
    clean.update(u.dest, u.source, u.delta);
  const ZipfWorkload churned_workload(churned_config);
  for (const FlowUpdate& u : churned_workload.updates())
    churned.update(u.dest, u.source, u.delta);

  EXPECT_TRUE(clean == churned)
      << "r=" << r << " s=" << s << " churn=" << churn;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DeleteEquivalenceGrid,
    ::testing::Combine(::testing::Values(1, 2, 4),
                       ::testing::Values(16u, 64u, 256u),
                       ::testing::Values(1u, 3u)));

// ---------------------------------------------------------------------------
// Grid 2: basic/tracking equivalence for every (r, s).
// ---------------------------------------------------------------------------
using Rs = std::tuple<int, std::uint32_t>;

class EstimatorEquivalenceGrid : public ::testing::TestWithParam<Rs> {};

TEST_P(EstimatorEquivalenceGrid, TrackTopkEqualsBaseTopk) {
  const auto [r, s] = GetParam();
  DcsParams params;
  params.num_tables = r;
  params.buckets_per_table = s;
  params.seed = 11;

  DistinctCountSketch basic(params);
  TrackingDcs tracking(params);
  Xoshiro256 rng(static_cast<std::uint64_t>(r) * 1000 + s);
  std::vector<std::pair<Addr, Addr>> live;
  for (int step = 0; step < 6000; ++step) {
    if (!live.empty() && rng.bounded(4) == 0) {
      const std::size_t pick = rng.bounded(live.size());
      const auto [dest, source] = live[pick];
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
      basic.update(dest, source, -1);
      tracking.update(dest, source, -1);
    } else {
      const Addr dest = static_cast<Addr>(rng.bounded(80));
      const Addr source = static_cast<Addr>(rng());
      live.emplace_back(dest, source);
      basic.update(dest, source, +1);
      tracking.update(dest, source, +1);
    }
  }
  EXPECT_EQ(basic.top_k(10).entries, tracking.top_k(10).entries)
      << "r=" << r << " s=" << s;
  EXPECT_TRUE(tracking.check_invariants());
}

INSTANTIATE_TEST_SUITE_P(Grid, EstimatorEquivalenceGrid,
                         ::testing::Combine(::testing::Values(1, 3),
                                            ::testing::Values(16u, 128u)));

// ---------------------------------------------------------------------------
// Grid 3: serialization round trip for every (r, s, key_bits).
// ---------------------------------------------------------------------------
using RsBits = std::tuple<int, std::uint32_t, int>;

class SerializationGrid : public ::testing::TestWithParam<RsBits> {};

TEST_P(SerializationGrid, RoundTripsExactly) {
  const auto [r, s, key_bits] = GetParam();
  DcsParams params;
  params.num_tables = r;
  params.buckets_per_table = s;
  params.key_bits = key_bits;
  params.seed = 13;
  DistinctCountSketch sketch(params);
  Xoshiro256 rng(5);
  const PairKey mask =
      key_bits == 64 ? ~PairKey{0} : ((PairKey{1} << key_bits) - 1);
  for (int i = 0; i < 1000; ++i) sketch.update_key(rng() & mask, +1);

  std::stringstream buffer;
  {
    BinaryWriter writer(buffer);
    sketch.serialize(writer);
  }
  BinaryReader reader(buffer);
  EXPECT_TRUE(DistinctCountSketch::deserialize(reader) == sketch);
}

INSTANTIATE_TEST_SUITE_P(Grid, SerializationGrid,
                         ::testing::Combine(::testing::Values(1, 3),
                                            ::testing::Values(16u, 64u),
                                            ::testing::Values(16, 32, 64)));

// ---------------------------------------------------------------------------
// Algebraic laws of the linear sketch: merge commutes and associates,
// subtract inverts merge.
// ---------------------------------------------------------------------------
class SketchAlgebra : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  static DistinctCountSketch random_sketch(const DcsParams& params,
                                           std::uint64_t seed) {
    DistinctCountSketch sketch(params);
    Xoshiro256 rng(seed);
    const int n = 500 + static_cast<int>(rng.bounded(1500));
    for (int i = 0; i < n; ++i)
      sketch.update(static_cast<Addr>(rng.bounded(64)),
                    static_cast<Addr>(rng()), rng.bounded(8) == 0 ? -1 : +1);
    return sketch;
  }
};

TEST_P(SketchAlgebra, MergeCommutes) {
  DcsParams params;
  params.buckets_per_table = 32;
  params.seed = 9;
  const auto a = random_sketch(params, GetParam() * 3 + 1);
  const auto b = random_sketch(params, GetParam() * 3 + 2);
  DistinctCountSketch ab = a, ba = b;
  ab.merge(b);
  ba.merge(a);
  EXPECT_TRUE(ab == ba);
}

TEST_P(SketchAlgebra, MergeAssociates) {
  DcsParams params;
  params.buckets_per_table = 32;
  params.seed = 9;
  const auto a = random_sketch(params, GetParam() * 5 + 1);
  const auto b = random_sketch(params, GetParam() * 5 + 2);
  const auto c = random_sketch(params, GetParam() * 5 + 3);
  DistinctCountSketch left = a;   // (a + b) + c
  left.merge(b);
  left.merge(c);
  DistinctCountSketch bc = b;     // a + (b + c)
  bc.merge(c);
  DistinctCountSketch right = a;
  right.merge(bc);
  EXPECT_TRUE(left == right);
}

TEST_P(SketchAlgebra, SubtractInvertsMerge) {
  DcsParams params;
  params.buckets_per_table = 32;
  params.seed = 9;
  const auto a = random_sketch(params, GetParam() * 7 + 1);
  const auto b = random_sketch(params, GetParam() * 7 + 2);
  DistinctCountSketch combined = a;
  combined.merge(b);
  combined.subtract(b);
  EXPECT_TRUE(combined == a);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SketchAlgebra,
                         ::testing::Range<std::uint64_t>(0, 5));

// ---------------------------------------------------------------------------
// Adversarial streams: deleting never-inserted pairs violates the stream
// contract; the sketch must degrade safely (no crashes, no fabricated keys).
// ---------------------------------------------------------------------------
class AdversarialStream : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AdversarialStream, SpuriousDeletesNeverFabricateKeys) {
  DcsParams params;
  params.seed = GetParam();
  DistinctCountSketch sketch(params);

  Xoshiro256 rng(GetParam() * 31 + 7);
  std::unordered_set<PairKey> inserted;
  for (int i = 0; i < 2000; ++i) {
    const PairKey key = pack_pair(static_cast<Addr>(rng.bounded(64)),
                                  static_cast<Addr>(rng()));
    inserted.insert(key);
    sketch.update_key(key, +1);
  }
  // 2000 spurious deletes of keys that were never inserted.
  for (int i = 0; i < 2000; ++i) {
    const PairKey key = pack_pair(static_cast<Addr>(rng.bounded(64)),
                                  static_cast<Addr>(0x80000000u | rng()));
    if (inserted.count(key)) continue;
    sketch.update_key(key, -1);
  }

  EXPECT_FALSE(sketch.validate());  // corruption is detectable...
  // ...but every key the sampler recovers must be one that was inserted.
  for (int level = 0; level <= params.max_level; ++level) {
    for (const PairKey key : sketch.level_sample(level)) {
      EXPECT_TRUE(inserted.count(key))
          << "fabricated key " << key << " at level " << level;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AdversarialStream,
                         ::testing::Range<std::uint64_t>(0, 5));

// ---------------------------------------------------------------------------
// Serialization robustness: truncating the wire format at any point must
// throw SerializeError, never crash or return a half-read sketch.
// ---------------------------------------------------------------------------
TEST(SerializationRobustness, EveryTruncationPointThrows) {
  DcsParams params;
  params.buckets_per_table = 16;
  params.key_bits = 16;
  DistinctCountSketch sketch(params);
  for (PairKey key = 0; key < 200; ++key) sketch.update_key(key, +1);

  std::stringstream buffer;
  {
    BinaryWriter writer(buffer);
    sketch.serialize(writer);
  }
  const std::string bytes = buffer.str();
  // Sample truncation points across the file (every 997 bytes plus the ends).
  for (std::size_t cut = 0; cut < bytes.size(); cut += 997) {
    std::stringstream truncated(bytes.substr(0, cut));
    BinaryReader reader(truncated);
    EXPECT_THROW(DistinctCountSketch::deserialize(reader), SerializeError)
        << "cut at " << cut;
  }
}

TEST(SerializationRobustness, BitFlippedHeaderRejected) {
  DcsParams params;
  params.buckets_per_table = 16;
  DistinctCountSketch sketch(params);
  sketch.update(1, 2, +1);
  std::stringstream buffer;
  {
    BinaryWriter writer(buffer);
    sketch.serialize(writer);
  }
  std::string bytes = buffer.str();
  bytes[0] ^= 0x40;  // corrupt the magic
  std::stringstream corrupted(bytes);
  BinaryReader reader(corrupted);
  EXPECT_THROW(DistinctCountSketch::deserialize(reader), SerializeError);
}

}  // namespace
}  // namespace dcs
