// Tests for the second wave of baselines: sample-and-hold, SpaceSaving, and
// the bitmap distinct counters.
#include <gtest/gtest.h>

#include <cmath>
#include <unordered_map>

#include "baselines/bitmap_counter.hpp"
#include "baselines/sample_and_hold.hpp"
#include "baselines/space_saving.hpp"
#include "common/random.hpp"

namespace dcs {
namespace {

// --------------------------- SampleAndHold -------------------------------

TEST(SampleAndHold, RejectsBadConstruction) {
  EXPECT_THROW(SampleAndHold(0, 10), std::invalid_argument);
  EXPECT_THROW(SampleAndHold(10, 0), std::invalid_argument);
}

TEST(SampleAndHold, CatchesElephantFlow) {
  SampleAndHold sah(100, 1024, 7);
  // One elephant (50k packets), many mice (1 packet each).
  for (int i = 0; i < 50'000; ++i) sah.observe(1, 99);
  for (Addr m = 0; m < 5000; ++m) sah.observe(1000 + m, 99);
  const auto flows = sah.top_flows(1);
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].source, 1u);
  EXPECT_EQ(flows[0].dest, 99u);
  // Held counts are near-exact once sampled: within the pre-sampling gap.
  EXPECT_GT(flows[0].packets, 49'000u);
}

TEST(SampleAndHold, SingleSynPacketsAreMostlyInvisible) {
  // The paper's critique: a SYN flood is 1 packet per flow; at 1/100
  // sampling only ~1% of attack flows get tracked at count 1.
  SampleAndHold sah(100, 100'000, 7);
  for (Addr s = 0; s < 10'000; ++s) sah.observe(s, 0xbad);
  EXPECT_LT(sah.tracked_flows(), 300u);
  const auto dests = sah.top_destinations(1);
  if (!dests.empty()) {
    EXPECT_LT(dests[0].estimate, 300u);
  }
}

TEST(SampleAndHold, TableBudgetIsRespected) {
  SampleAndHold sah(1, 64, 3);  // sample everything, tiny table
  Xoshiro256 rng(5);
  for (int i = 0; i < 10'000; ++i)
    sah.observe(static_cast<Addr>(rng()), static_cast<Addr>(rng.bounded(10)));
  EXPECT_LE(sah.tracked_flows(), 64u);
}

TEST(SampleAndHold, ResetClears) {
  SampleAndHold sah(1, 64, 3);
  sah.observe(1, 2);
  ASSERT_EQ(sah.tracked_flows(), 1u);
  sah.reset();
  EXPECT_EQ(sah.tracked_flows(), 0u);
}

// ----------------------------- SpaceSaving -------------------------------

TEST(SpaceSaving, RejectsZeroCapacity) {
  EXPECT_THROW(SpaceSaving(0), std::invalid_argument);
}

TEST(SpaceSaving, ExactWithinCapacity) {
  SpaceSaving ss(16);
  for (int i = 0; i < 7; ++i) ss.add(1);
  for (int i = 0; i < 3; ++i) ss.add(2);
  const auto top = ss.top_k(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].key, 1u);
  EXPECT_EQ(top[0].count, 7u);
  EXPECT_EQ(top[0].overestimate, 0u);
  EXPECT_TRUE(ss.is_guaranteed(1));
}

TEST(SpaceSaving, ErrorBoundedByTotalOverCapacity) {
  // Classic guarantee: overestimate <= N / capacity for every key.
  SpaceSaving ss(64);
  Xoshiro256 rng(11);
  std::unordered_map<Addr, std::uint64_t> truth;
  for (int i = 0; i < 100'000; ++i) {
    // Skewed stream: key k with probability ~1/k.
    const Addr key = static_cast<Addr>(rng.bounded(rng.bounded(1000) + 1));
    ++truth[key];
    ss.add(key);
  }
  const std::uint64_t bound = ss.total_count() / 64;
  for (const auto& counter : ss.top_k(64)) {
    EXPECT_LE(counter.overestimate, bound);
    EXPECT_GE(counter.count, truth[counter.key]);           // never under
    EXPECT_LE(counter.count, truth[counter.key] + bound);   // bounded over
  }
}

TEST(SpaceSaving, HeavyKeySurvivesEvictionChurn) {
  SpaceSaving ss(32);
  Xoshiro256 rng(3);
  for (int i = 0; i < 50'000; ++i) {
    ss.add(777);                              // heavy
    ss.add(static_cast<Addr>(rng()));         // eviction pressure
  }
  const auto top = ss.top_k(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].key, 777u);
  EXPECT_GE(top[0].count, 50'000u);
}

// ------------------------------ Bitmaps ----------------------------------

TEST(DirectBitmap, RejectsBadSizes) {
  EXPECT_THROW(DirectBitmap(100), std::invalid_argument);  // not power of two
  EXPECT_THROW(DirectBitmap(32), std::invalid_argument);   // too small
}

TEST(DirectBitmap, CountsSmallSetsAccurately) {
  DirectBitmap bitmap(4096, 5);
  for (std::uint64_t k = 0; k < 500; ++k) bitmap.add(k);
  EXPECT_NEAR(bitmap.estimate(), 500.0, 40.0);
}

TEST(DirectBitmap, DuplicatesAreFree) {
  DirectBitmap bitmap(4096, 5);
  for (int round = 0; round < 100; ++round)
    for (std::uint64_t k = 0; k < 100; ++k) bitmap.add(k);
  EXPECT_NEAR(bitmap.estimate(), 100.0, 15.0);
}

TEST(DirectBitmap, SaturatesBeyondCapacity) {
  DirectBitmap bitmap(64, 5);
  for (std::uint64_t k = 0; k < 10'000; ++k) bitmap.add(k);
  EXPECT_TRUE(bitmap.saturated());
  EXPECT_TRUE(std::isfinite(bitmap.estimate()));
}

TEST(VirtualBitmap, ExtendsRangeViaSampling) {
  // 4096 physical bits with 1/16 sampling should count 100k distinct keys
  // that would saturate the direct bitmap.
  VirtualBitmap virtual_bitmap(4096, 16, 5);
  DirectBitmap direct(4096, 5);
  for (std::uint64_t k = 0; k < 100'000; ++k) {
    virtual_bitmap.add(k);
    direct.add(k);
  }
  EXPECT_NEAR(virtual_bitmap.estimate(), 100'000.0, 10'000.0);
  EXPECT_LT(direct.estimate(), 60'000.0);  // saturation clamps it
}

TEST(VirtualBitmap, RejectsZeroSampling) {
  EXPECT_THROW(VirtualBitmap(4096, 0), std::invalid_argument);
}

}  // namespace
}  // namespace dcs
