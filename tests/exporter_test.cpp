// Tests for the simulated NetFlow exporter: handshake-state transitions to
// flow updates, and SYN/FIN interval aggregation.
#include "net/exporter.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace dcs {
namespace {

std::vector<FlowUpdate> run(FlowUpdateExporter& exporter,
                            const std::vector<Packet>& packets) {
  return exporter.run(packets);
}

TEST(Exporter, SynOpensHalfOpenConnection) {
  FlowUpdateExporter exporter;
  const auto updates = run(exporter, {{0, 1, 2, PacketType::kSyn}});
  ASSERT_EQ(updates.size(), 1u);
  EXPECT_EQ(updates[0], (FlowUpdate{1, 2, +1}));
  EXPECT_EQ(exporter.half_open_pairs(), 1u);
}

TEST(Exporter, AckCompletesAndDeletes) {
  FlowUpdateExporter exporter;
  const auto updates = run(exporter, {{0, 1, 2, PacketType::kSyn},
                                      {1, 1, 2, PacketType::kSynAck},
                                      {2, 1, 2, PacketType::kAck}});
  ASSERT_EQ(updates.size(), 2u);
  EXPECT_EQ(updates[0], (FlowUpdate{1, 2, +1}));
  EXPECT_EQ(updates[1], (FlowUpdate{1, 2, -1}));
  EXPECT_EQ(exporter.half_open_pairs(), 0u);
}

TEST(Exporter, RstAbortsHalfOpen) {
  FlowUpdateExporter exporter;
  const auto updates = run(exporter, {{0, 1, 2, PacketType::kSyn},
                                      {1, 1, 2, PacketType::kRst}});
  ASSERT_EQ(updates.size(), 2u);
  EXPECT_EQ(updates[1], (FlowUpdate{1, 2, -1}));
}

TEST(Exporter, DuplicateSynsEmitOneUpdate) {
  FlowUpdateExporter exporter;
  const auto updates = run(exporter, {{0, 1, 2, PacketType::kSyn},
                                      {1, 1, 2, PacketType::kSyn},
                                      {2, 1, 2, PacketType::kSyn}});
  EXPECT_EQ(updates.size(), 1u);
  EXPECT_EQ(exporter.half_open_pairs(), 1u);
}

TEST(Exporter, AckWithoutSynIsIgnored) {
  FlowUpdateExporter exporter;
  EXPECT_TRUE(run(exporter, {{0, 1, 2, PacketType::kAck}}).empty());
}

TEST(Exporter, FinAndDataEmitNoUpdates) {
  FlowUpdateExporter exporter;
  EXPECT_TRUE(run(exporter, {{0, 1, 2, PacketType::kFin},
                             {1, 1, 2, PacketType::kData},
                             {2, 1, 2, PacketType::kSynAck}})
                  .empty());
}

TEST(Exporter, ReopenAfterCompletionEmitsAgain) {
  FlowUpdateExporter exporter;
  const auto updates = run(exporter, {{0, 1, 2, PacketType::kSyn},
                                      {1, 1, 2, PacketType::kAck},
                                      {2, 1, 2, PacketType::kSyn}});
  ASSERT_EQ(updates.size(), 3u);
  EXPECT_EQ(updates[2], (FlowUpdate{1, 2, +1}));
}

TEST(Exporter, DistinctPairsTrackedIndependently) {
  FlowUpdateExporter exporter;
  const auto updates = run(exporter, {{0, 1, 2, PacketType::kSyn},
                                      {1, 3, 2, PacketType::kSyn},
                                      {2, 1, 4, PacketType::kSyn},
                                      {3, 1, 2, PacketType::kAck}});
  EXPECT_EQ(updates.size(), 4u);
  EXPECT_EQ(exporter.half_open_pairs(), 2u);
}

TEST(Exporter, IntervalsAggregateSynAndFin) {
  FlowUpdateExporter exporter(10);
  exporter.run({{0, 1, 2, PacketType::kSyn},
                {5, 3, 2, PacketType::kSyn},
                {7, 1, 2, PacketType::kFin},
                {12, 4, 2, PacketType::kSyn},
                {15, 4, 2, PacketType::kRst},
                {25, 5, 2, PacketType::kSyn}});
  const auto& intervals = exporter.intervals();
  ASSERT_EQ(intervals.size(), 3u);
  EXPECT_EQ(intervals[0], (IntervalCounts{2, 1}));
  EXPECT_EQ(intervals[1], (IntervalCounts{1, 1}));  // RST counted as FIN
  EXPECT_EQ(intervals[2], (IntervalCounts{1, 0}));
}

TEST(Exporter, EmptyIntervalsAreEmitted) {
  FlowUpdateExporter exporter(10);
  exporter.run({{0, 1, 2, PacketType::kSyn}, {35, 1, 3, PacketType::kSyn}});
  // Ticks 0-9 (1 syn), 10-19 (0), 20-29 (0), 30-39 (1 syn).
  ASSERT_EQ(exporter.intervals().size(), 4u);
  EXPECT_EQ(exporter.intervals()[1], (IntervalCounts{0, 0}));
  EXPECT_EQ(exporter.intervals()[2], (IntervalCounts{0, 0}));
}

TEST(Exporter, RejectsZeroInterval) {
  EXPECT_THROW(FlowUpdateExporter(0), std::invalid_argument);
}

TEST(Exporter, DirectObserveKeepsLastIntervalAfterFinish) {
  // Regression: callers driving observe() directly used to silently drop the
  // trailing partial interval; finish_interval() is the documented fix.
  FlowUpdateExporter exporter(10);
  const auto sink = [](const FlowUpdate&) {};
  exporter.observe({0, 1, 2, PacketType::kSyn}, sink);
  exporter.observe({12, 3, 2, PacketType::kSyn}, sink);
  exporter.observe({14, 3, 2, PacketType::kFin}, sink);
  ASSERT_EQ(exporter.intervals().size(), 1u);  // [10,20) still in progress
  exporter.finish_interval();
  ASSERT_EQ(exporter.intervals().size(), 2u);
  EXPECT_EQ(exporter.intervals()[1], (IntervalCounts{1, 1}));
}

TEST(Exporter, FinishIntervalIsIdempotent) {
  FlowUpdateExporter exporter(10);
  const auto sink = [](const FlowUpdate&) {};
  exporter.observe({0, 1, 2, PacketType::kSyn}, sink);
  exporter.finish_interval();
  exporter.finish_interval();  // no packets since the flush: must be a no-op
  EXPECT_EQ(exporter.intervals().size(), 1u);
  // And with nothing observed at all, it emits nothing.
  FlowUpdateExporter idle(10);
  idle.finish_interval();
  EXPECT_TRUE(idle.intervals().empty());
}

TEST(Exporter, RunBatchedMatchesRunExactly) {
  std::vector<Packet> packets;
  for (std::uint64_t i = 0; i < 200; ++i) {
    packets.push_back({i * 3, static_cast<Addr>(i % 17), 2, PacketType::kSyn});
    if (i % 4 == 0)
      packets.push_back(
          {i * 3 + 1, static_cast<Addr>(i % 17), 2, PacketType::kAck});
  }
  FlowUpdateExporter sequential(50);
  const auto expected = sequential.run(packets);

  FlowUpdateExporter batched(50);
  std::vector<FlowUpdate> got;
  std::size_t max_block = 0;
  const std::size_t emitted = batched.run_batched(
      packets,
      [&](std::span<const FlowUpdate> block) {
        max_block = std::max(max_block, block.size());
        got.insert(got.end(), block.begin(), block.end());
      },
      /*block_updates=*/16);
  EXPECT_EQ(emitted, expected.size());
  EXPECT_EQ(got, expected);
  EXPECT_LE(max_block, 16u + 1u);  // observe() emits at most one update each
  EXPECT_EQ(batched.intervals(), sequential.intervals());
}

TEST(Exporter, RunBatchedRejectsZeroBlock) {
  FlowUpdateExporter exporter;
  EXPECT_THROW(
      exporter.run_batched({}, [](std::span<const FlowUpdate>) {}, 0),
      std::invalid_argument);
}

TEST(ExporterTimeout, HalfOpenEntryExpiresWithMinusOne) {
  FlowUpdateExporter exporter(1000, /*half_open_timeout=*/50);
  const auto updates = run(exporter, {{0, 1, 2, PacketType::kSyn},
                                      {100, 3, 4, PacketType::kSyn}});
  ASSERT_EQ(updates.size(), 3u);
  EXPECT_EQ(updates[0], (FlowUpdate{1, 2, +1}));
  EXPECT_EQ(updates[1], (FlowUpdate{1, 2, -1}));  // expired at t=100 sweep
  EXPECT_EQ(updates[2], (FlowUpdate{3, 4, +1}));
  EXPECT_EQ(exporter.half_open_pairs(), 1u);
}

TEST(ExporterTimeout, RetransmittedSynRefreshesTimer) {
  FlowUpdateExporter exporter(1000, 50);
  const auto updates = run(exporter, {{0, 1, 2, PacketType::kSyn},
                                      {40, 1, 2, PacketType::kSyn},  // refresh
                                      {80, 9, 9, PacketType::kData}});
  // Deadline moved to 40+50=90, so the t=80 sweep must NOT expire it.
  ASSERT_EQ(updates.size(), 1u);
  EXPECT_EQ(exporter.half_open_pairs(), 1u);
}

TEST(ExporterTimeout, AckBeforeDeadlineBeatsExpiry) {
  FlowUpdateExporter exporter(1000, 50);
  const auto updates = run(exporter, {{0, 1, 2, PacketType::kSyn},
                                      {10, 1, 2, PacketType::kAck},
                                      {200, 9, 9, PacketType::kData}});
  ASSERT_EQ(updates.size(), 2u);
  EXPECT_EQ(updates[1], (FlowUpdate{1, 2, -1}));
  // The stale expiry-queue entry must not emit a second -1.
  EXPECT_EQ(exporter.half_open_pairs(), 0u);
}

TEST(ExporterTimeout, ExplicitExpireDrainsTail) {
  FlowUpdateExporter exporter(1000, 50);
  std::vector<FlowUpdate> updates;
  const auto sink = [&updates](const FlowUpdate& u) { updates.push_back(u); };
  exporter.observe({0, 1, 2, PacketType::kSyn}, sink);
  exporter.observe({5, 3, 2, PacketType::kSyn}, sink);
  exporter.expire_before(1000, sink);
  EXPECT_EQ(updates.size(), 4u);  // two +1, two -1
  EXPECT_EQ(exporter.half_open_pairs(), 0u);
}

TEST(ExporterTimeout, DisabledByDefault) {
  FlowUpdateExporter exporter;
  const auto updates = run(exporter, {{0, 1, 2, PacketType::kSyn},
                                      {1'000'000, 9, 9, PacketType::kData}});
  EXPECT_EQ(updates.size(), 1u);
  EXPECT_EQ(exporter.half_open_pairs(), 1u);  // never reaped
}

}  // namespace
}  // namespace dcs
