// Differential fuzz test for the NetFlow exporter: random packet streams
// against a straightforward reference model of half-open handshake state.
// The stream of emitted flow updates, folded through an ExactTracker, must
// reproduce the reference's half-open sets at every point.
#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "baselines/exact_tracker.hpp"
#include "common/random.hpp"
#include "dcs.hpp"
#include "net/exporter.hpp"

namespace dcs {
namespace {

class ExporterFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExporterFuzz, UpdatesReconstructHalfOpenState) {
  Xoshiro256 rng(GetParam() * 101 + 3);
  FlowUpdateExporter exporter;
  ExactTracker from_updates;
  // Reference model: the set of half-open (client, server) pairs.
  std::unordered_set<PairKey> reference;

  std::uint64_t tick = 0;
  for (int step = 0; step < 20'000; ++step) {
    tick += rng.bounded(3);
    Packet packet;
    packet.timestamp = tick;
    packet.source = static_cast<Addr>(rng.bounded(40));
    packet.dest = static_cast<Addr>(100 + rng.bounded(10));
    const std::uint64_t kind = rng.bounded(10);
    packet.type = kind < 4   ? PacketType::kSyn
                  : kind < 7 ? PacketType::kAck
                  : kind < 8 ? PacketType::kRst
                  : kind < 9 ? PacketType::kFin
                             : PacketType::kData;

    // Reference transition.
    const PairKey key = pack_pair(packet.source, packet.dest);
    switch (packet.type) {
      case PacketType::kSyn:
        reference.insert(key);
        break;
      case PacketType::kAck:
      case PacketType::kRst:
        reference.erase(key);
        break;
      default:
        break;
    }

    exporter.observe(packet, [&from_updates](const FlowUpdate& u) {
      from_updates.update(u.dest, u.source, u.delta);
    });

    if (step % 1000 == 0) {
      ASSERT_EQ(exporter.half_open_pairs(), reference.size()) << "step " << step;
    }
  }

  // Final state: per-destination distinct half-open sources must match.
  std::unordered_map<Addr, std::uint64_t> expected;
  for (const PairKey key : reference) ++expected[pair_member(key)];
  for (Addr dest = 100; dest < 110; ++dest) {
    const auto it = expected.find(dest);
    EXPECT_EQ(from_updates.frequency(dest),
              it == expected.end() ? 0u : it->second)
        << "dest " << dest;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExporterFuzz,
                         ::testing::Range<std::uint64_t>(0, 8));

// Same differential model, with SYN-timeout reaping enabled: the reference
// applies the identical lazy-expiry rule (reap entries whose deadline is
// <= the current packet's timestamp before processing it).
class ExporterTimeoutFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExporterTimeoutFuzz, TimeoutSemanticsMatchReference) {
  constexpr std::uint64_t kTimeout = 40;
  Xoshiro256 rng(GetParam() * 211 + 9);
  FlowUpdateExporter exporter(1000, kTimeout);
  std::unordered_map<PairKey, std::uint64_t> reference;  // key -> opened time

  std::uint64_t tick = 0;
  for (int step = 0; step < 10'000; ++step) {
    tick += rng.bounded(5);
    Packet packet;
    packet.timestamp = tick;
    packet.source = static_cast<Addr>(rng.bounded(25));
    packet.dest = static_cast<Addr>(100 + rng.bounded(6));
    const std::uint64_t kind = rng.bounded(10);
    packet.type = kind < 5   ? PacketType::kSyn
                  : kind < 8 ? PacketType::kAck
                             : PacketType::kRst;

    // Reference: lazy expiry first, then the packet's own transition.
    for (auto it = reference.begin(); it != reference.end();) {
      if (it->second + kTimeout <= tick)
        it = reference.erase(it);
      else
        ++it;
    }
    const PairKey key = pack_pair(packet.source, packet.dest);
    switch (packet.type) {
      case PacketType::kSyn:
        reference[key] = tick;  // open or refresh the timer
        break;
      case PacketType::kAck:
      case PacketType::kRst:
        reference.erase(key);
        break;
      default:
        break;
    }

    exporter.observe(packet, [](const FlowUpdate&) {});
    if (step % 500 == 0) {
      ASSERT_EQ(exporter.half_open_pairs(), reference.size())
          << "step " << step << " tick " << tick;
    }
  }
  EXPECT_EQ(exporter.half_open_pairs(), reference.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExporterTimeoutFuzz,
                         ::testing::Range<std::uint64_t>(0, 6));

TEST(UmbrellaHeader, CompilesAndExposesTheApi) {
  // Smoke check that src/dcs.hpp pulls in a usable surface.
  TrackingDcs tracker;
  tracker.update(1, 2, +1);
  EXPECT_EQ(tracker.top_k(1).entries.size(), 1u);
}

}  // namespace
}  // namespace dcs
