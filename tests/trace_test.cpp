// Unit tests for the epoch tracing layer (obs/trace.hpp) and the embedded
// HTTP ops server (obs/http_export.hpp), plus HistogramSnapshot quantile
// edge cases the ops plane depends on for its latency summaries.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/export.hpp"
#include "obs/http_export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/socket.hpp"

namespace dcs::obs {
namespace {

EpochTrace make_trace(std::uint64_t epoch, std::uint64_t base_ns = 1000) {
  EpochTrace trace;
  trace.site_id = 7;
  trace.epoch = epoch;
  trace.updates = 2048;
  trace.bytes = 4096;
  for (std::size_t i = 0; i < kTraceStageCount; ++i)
    trace.stage_unix_ns[i] = base_ns + 100 * i;
  trace.freshness_ns = 100 * (kTraceStageCount - 1);
  return trace;
}

TEST(TraceStageTest, NamesAreStableAndDistinct) {
  const char* expected[] = {"sealed",   "spooled",   "shipped", "received",
                            "admitted", "journaled", "merged",
                            "detector_evaluated"};
  for (std::size_t i = 0; i < kTraceStageCount; ++i)
    EXPECT_EQ(trace_stage_name(static_cast<TraceStage>(i)), expected[i]);
}

TEST(EpochTraceTest, CompleteRequiresEveryStampMonotone) {
  EpochTrace trace = make_trace(1);
  EXPECT_TRUE(trace.complete());

  // Equal adjacent stamps are fine (coarse clocks).
  trace.stamp(TraceStage::kSpooled) = trace.stamp(TraceStage::kSealed);
  EXPECT_TRUE(trace.complete());

  // A missing stage breaks completeness.
  trace = make_trace(1);
  trace.stamp(TraceStage::kJournaled) = 0;
  EXPECT_FALSE(trace.complete());

  // A regression in pipeline order breaks completeness.
  trace = make_trace(1);
  trace.stamp(TraceStage::kMerged) = trace.stamp(TraceStage::kSealed) - 1;
  EXPECT_FALSE(trace.complete());
}

TEST(TraceRingTest, SnapshotReturnsOldestFirst) {
  TraceRing ring(8);
  for (std::uint64_t e = 1; e <= 5; ++e) ring.push(make_trace(e));
  const auto traces = ring.snapshot();
  ASSERT_EQ(traces.size(), 5u);
  for (std::uint64_t e = 1; e <= 5; ++e) EXPECT_EQ(traces[e - 1].epoch, e);
  EXPECT_EQ(ring.pushed(), 5u);
}

TEST(TraceRingTest, WrapKeepsOnlyTheLastCapacityTraces) {
  TraceRing ring(4);
  for (std::uint64_t e = 1; e <= 11; ++e) ring.push(make_trace(e));
  const auto traces = ring.snapshot();
  ASSERT_EQ(traces.size(), 4u);
  // Epochs 8..11 survive, oldest first.
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(traces[i].epoch, 8 + i);
}

TEST(TraceRingTest, RoundTripPreservesEveryField) {
  TraceRing ring(2);
  const EpochTrace pushed = make_trace(42, /*base_ns=*/123456789);
  ring.push(pushed);
  const auto traces = ring.snapshot();
  ASSERT_EQ(traces.size(), 1u);
  const EpochTrace& got = traces[0];
  EXPECT_EQ(got.site_id, pushed.site_id);
  EXPECT_EQ(got.epoch, pushed.epoch);
  EXPECT_EQ(got.updates, pushed.updates);
  EXPECT_EQ(got.bytes, pushed.bytes);
  EXPECT_EQ(got.freshness_ns, pushed.freshness_ns);
  EXPECT_EQ(got.stage_unix_ns, pushed.stage_unix_ns);
}

// Writers hammer the ring while readers snapshot: every returned trace must
// be internally consistent (a seqlock-torn slot is skipped, never blended).
// Consistency oracle: every stamp of trace e equals base + 100*stage where
// base encodes e, so any cross-epoch blend is detectable.
TEST(TraceRingTest, ConcurrentPushAndSnapshotYieldOnlyConsistentTraces) {
  TraceRing ring(16);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> bad{0};

  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (const EpochTrace& trace : ring.snapshot()) {
        const std::uint64_t base = trace.epoch * 1000;
        for (std::size_t i = 0; i < kTraceStageCount; ++i)
          if (trace.stage_unix_ns[i] != base + 100 * i)
            bad.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  constexpr int kWriters = 3;
  constexpr std::uint64_t kPerWriter = 4000;
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w)
    writers.emplace_back([&ring, w] {
      for (std::uint64_t n = 0; n < kPerWriter; ++n) {
        const std::uint64_t epoch =
            static_cast<std::uint64_t>(w) * kPerWriter + n + 1;
        ring.push(make_trace(epoch, epoch * 1000));
      }
    });
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  EXPECT_EQ(bad.load(), 0u);
  EXPECT_EQ(ring.pushed(), kWriters * kPerWriter);
  // After the dust settles a snapshot sees a full, consistent ring.
  EXPECT_EQ(ring.snapshot().size(), ring.capacity());
}

TEST(TraceJsonTest, RendersStagesAndOmitsZeroStamps) {
  EpochTrace trace = make_trace(3);
  trace.stamp(TraceStage::kJournaled) = 0;  // e.g. no durability configured
  const std::string json = traces_to_json({trace});
  EXPECT_NE(json.find("\"site_id\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"epoch\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"sealed\""), std::string::npos);
  EXPECT_NE(json.find("\"detector_evaluated\""), std::string::npos);
  EXPECT_EQ(json.find("\"journaled\""), std::string::npos);
  EXPECT_NE(json.find("\"complete\": false"), std::string::npos);

  EXPECT_EQ(traces_to_json({}), "[]\n");
}

TEST(TraceMetricsTest, ObserveSpanClampsSkewAndSkipsUnknownStamps) {
  TraceMetrics& metrics = TraceMetrics::get();
  Histogram& hist = metrics.stage(TraceStage::kReceived);
  const std::uint64_t before = hist.snapshot().count;

  set_enabled(true);
  // Unknown stamps (v2 peer): no observation.
  metrics.observe_span(TraceStage::kReceived, 0, 500);
  metrics.observe_span(TraceStage::kReceived, 500, 0);
  EXPECT_EQ(hist.snapshot().count, before);

  // Cross-host clock skew (prev > cur) clamps to 0 instead of wrapping.
  metrics.observe_span(TraceStage::kReceived, 1000, 400);
  auto snap = hist.snapshot();
  EXPECT_EQ(snap.count, before + 1);
  EXPECT_EQ(snap.buckets[0], 1u);  // bucket 0 holds exactly value 0

  metrics.observe_span(TraceStage::kReceived, 400, 1000);
  snap = hist.snapshot();
  EXPECT_EQ(snap.count, before + 2);
}

// --- HistogramSnapshot quantile edge cases (satellite 3) ---

TEST(HistogramQuantileTest, EmptyHistogramReportsZero) {
  HistogramSnapshot snap;
  EXPECT_EQ(snap.quantile(0.0), 0.0);
  EXPECT_EQ(snap.quantile(0.5), 0.0);
  EXPECT_EQ(snap.quantile(0.99), 0.0);
  EXPECT_EQ(snap.quantile(1.0), 0.0);
  EXPECT_EQ(snap.mean(), 0.0);
}

TEST(HistogramQuantileTest, SingleBucketMassStaysInsideTheBucket) {
  Histogram hist;
  for (int i = 0; i < 1000; ++i) hist.record(100);  // bucket [64, 127]
  const HistogramSnapshot snap = hist.snapshot();
  for (const double q : {0.01, 0.5, 0.9, 0.99, 1.0}) {
    const double v = snap.quantile(q);
    EXPECT_GE(v, 64.0) << "q=" << q;
    EXPECT_LE(v, 127.0) << "q=" << q;
  }
  // Out-of-range q clamps rather than misbehaving.
  EXPECT_GE(snap.quantile(-0.5), 64.0);
  EXPECT_LE(snap.quantile(1.5), 127.0);
}

TEST(HistogramQuantileTest, TopBucketSaturationReportsItsLowerEdge) {
  Histogram hist;
  // Values beyond the largest finite bucket collapse into the overflow
  // bucket, whose reported quantile is its (finite) lower edge.
  for (int i = 0; i < 10; ++i) hist.record(UINT64_MAX);
  const HistogramSnapshot snap = hist.snapshot();
  const double lower = static_cast<double>(
      std::uint64_t{1} << (HistogramSnapshot::kBuckets - 2));
  EXPECT_EQ(snap.quantile(0.5), lower);
  EXPECT_EQ(snap.quantile(1.0), lower);
}

TEST(HistogramQuantileTest, QuantilesAreMonotoneUnderRandomFills) {
  std::mt19937_64 rng(20260808);
  for (int trial = 0; trial < 20; ++trial) {
    Histogram hist;
    // Mix of magnitudes so mass spreads across many buckets.
    std::uniform_int_distribution<int> shift(0, 40);
    std::uniform_int_distribution<std::uint64_t> low(0, 1023);
    const int n = 1 + trial * 37;
    for (int i = 0; i < n; ++i)
      hist.record(low(rng) << shift(rng));
    const HistogramSnapshot snap = hist.snapshot();
    const double p50 = snap.quantile(0.50);
    const double p90 = snap.quantile(0.90);
    const double p99 = snap.quantile(0.99);
    EXPECT_LE(p50, p90) << "trial=" << trial;
    EXPECT_LE(p90, p99) << "trial=" << trial;
    EXPECT_GE(p50, 0.0);
  }
}

// --- HTTP ops server end to end over a real loopback socket ---

std::string http_get(std::uint16_t port, const std::string& request) {
  auto socket = service::tcp_connect("127.0.0.1", port, 2000);
  if (!socket) return {};
  socket->set_timeouts(2000, 2000);
  if (!socket->send_all(request)) return {};
  std::string response;
  char buffer[4096];
  for (;;) {
    const auto got = socket->recv_some(buffer, sizeof buffer);
    if (got.bytes == 0) break;
    response.append(buffer, got.bytes);
  }
  return response;
}

TEST(HttpServerTest, ServesRoutesAndRejectsUnknownsAndNonGet) {
  set_enabled(true);
  HttpServer server;  // 127.0.0.1, ephemeral port
  server.route("/metrics", [] {
    HttpResponse response;
    response.body = "metric_value 1\n";
    return response;
  });
  server.route("/healthz", [] {
    HttpResponse response;
    response.content_type = "application/json";
    response.body = "{\"status\":\"ok\"}";
    return response;
  });
  server.start();
  ASSERT_GT(server.port(), 0);

  const std::string ok = http_get(
      server.port(), "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(ok.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(ok.find("metric_value 1"), std::string::npos);
  EXPECT_NE(ok.find("Connection: close"), std::string::npos);

  // Query strings are stripped before route matching.
  const std::string with_query = http_get(
      server.port(), "GET /healthz?verbose=1 HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(with_query.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(with_query.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(with_query.find("application/json"), std::string::npos);

  const std::string missing = http_get(
      server.port(), "GET /nope HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(missing.find("HTTP/1.1 404"), std::string::npos);

  const std::string post = http_get(
      server.port(), "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(post.find("HTTP/1.1 405"), std::string::npos);

  const std::string garbage = http_get(server.port(), "not-http\r\n\r\n");
  EXPECT_NE(garbage.find("HTTP/1.1 400"), std::string::npos);

  server.stop();
  EXPECT_FALSE(server.running());
}

TEST(HttpServerTest, HandlerExceptionBecomes500AndIsCounted) {
  set_enabled(true);
  OpsMetrics& ops = OpsMetrics::get();
  const std::uint64_t errors_before = ops.request_errors.value();
  HttpServer server;
  server.route("/boom", []() -> HttpResponse {
    throw std::runtime_error("handler exploded");
  });
  server.start();
  const std::string response = http_get(
      server.port(), "GET /boom HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 500"), std::string::npos);
  EXPECT_GT(ops.request_errors.value(), errors_before);
  server.stop();
}

TEST(HttpServerTest, ServesRealRegistrySnapshots) {
  set_enabled(true);
  // Touch the trace metrics so the scrape has the full stage catalog.
  TraceMetrics::get();
  HttpServer server;
  server.route("/metrics", [] {
    HttpResponse response;
    response.body = to_prometheus(Registry::global().snapshot());
    return response;
  });
  server.start();
  const std::string response = http_get(
      server.port(), "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(response.find("dcs_detection_freshness_ns_count"),
            std::string::npos);
  for (std::size_t i = 0; i < kTraceStageCount; ++i) {
    const std::string family =
        "dcs_trace_stage_ns_count{stage=\"" +
        std::string(trace_stage_name(static_cast<TraceStage>(i))) + "\"}";
    EXPECT_NE(response.find(family), std::string::npos) << family;
  }
  server.stop();
}

}  // namespace
}  // namespace dcs::obs
