// Regression tests for the latent blocking-I/O assumptions surfaced by the
// reactor's non-blocking sockets (src/service/socket.{hpp,cpp}):
//
//   * send_some() must report partial progress on a full send buffer
//     instead of treating it as failure — the reactor's reply path depends
//     on resuming exactly where the kernel stopped.
//   * send_all()/recv_some() must survive EINTR (a signal landing mid-call
//     retries instead of dropping the connection), and the poll(2) loops in
//     accept()/tcp_connect() must retry EINTR with the remaining timeout
//     instead of reporting a spurious timeout.
//   * accept_now() on a non-blocking listener returns immediately with or
//     without a queued connection and never blocks.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstring>
#include <netinet/in.h>
#include <pthread.h>
#include <string>
#include <sys/socket.h>
#include <thread>
#include <vector>

#include "service/socket.hpp"

namespace dcs::service {
namespace {

/// Loopback listener + connected pair helper.
struct Pair {
  TcpListener listener;
  TcpSocket client;
  TcpSocket server;

  static Pair make() {
    Pair pair;
    auto listener = TcpListener::listen("127.0.0.1", 0);
    EXPECT_TRUE(listener.has_value());
    pair.listener = std::move(*listener);
    auto client = tcp_connect("127.0.0.1", pair.listener.port(), 1000);
    EXPECT_TRUE(client.has_value());
    pair.client = std::move(*client);
    auto server = pair.listener.accept(1000);
    EXPECT_TRUE(server.has_value());
    pair.server = std::move(*server);
    return pair;
  }
};

/// A non-blocking sender into a tiny-buffered pipe must hit would_block
/// with partial progress, and resuming from the reported offset must
/// deliver every byte intact — the reactor reply-path contract.
TEST(ServiceSocketIo, SendSomeReportsPartialProgressAndResumes) {
  Pair pair = Pair::make();
  // Shrink both kernel buffers so a modest payload cannot fit in flight.
  const int tiny = 4096;
  ::setsockopt(pair.server.fd(), SOL_SOCKET, SO_SNDBUF, &tiny, sizeof tiny);
  ::setsockopt(pair.client.fd(), SOL_SOCKET, SO_RCVBUF, &tiny, sizeof tiny);
  pair.server.set_nonblocking(true);

  // Payload much larger than the buffers: must stall at least once.
  std::string payload(128 * 1024, '\0');
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] = static_cast<char>(i * 1315423911u >> 3);

  std::string received;
  std::thread reader([&] {
    pair.client.set_timeouts(2000, 2000);
    char buffer[16 * 1024];
    while (received.size() < payload.size()) {
      // Throttle the head of the stream so the writer reliably hits
      // EAGAIN at least once, then drain at full speed.
      if (received.size() < 32 * 1024)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      const RecvResult got = pair.client.recv_some(buffer, sizeof buffer);
      if (got.closed || got.error) break;
      received.append(buffer, got.bytes);
    }
  });

  std::size_t offset = 0;
  std::uint64_t stalls = 0;
  while (offset < payload.size()) {
    const SendResult sent = pair.server.send_some(payload.data() + offset,
                                                  payload.size() - offset);
    ASSERT_FALSE(sent.error);
    offset += sent.bytes;
    if (sent.would_block) {
      ++stalls;
      ASSERT_LT(offset, payload.size())
          << "would_block reported after the full payload was accepted";
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  reader.join();
  EXPECT_GT(stalls, 0u) << "payload never stalled; buffers too big for the "
                           "partial-write path to be exercised";
  ASSERT_EQ(received.size(), payload.size());
  EXPECT_EQ(received, payload) << "bytes reordered or lost across stalls";
}

/// send_some on a closed peer reports error, not would_block.
TEST(ServiceSocketIo, SendSomeReportsHardErrorOnClosedPeer) {
  Pair pair = Pair::make();
  pair.server.set_nonblocking(true);
  pair.client.close();
  const std::string bytes(64 * 1024, 'x');
  // First sends may be absorbed until the RST lands; bounded retries.
  bool saw_error = false;
  for (int i = 0; i < 100 && !saw_error; ++i) {
    const SendResult sent = pair.server.send_some(bytes.data(), bytes.size());
    saw_error = sent.error;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(saw_error);
}

// --- EINTR survival ---------------------------------------------------------

std::atomic<int> g_signals_seen{0};

void count_signal(int) { g_signals_seen.fetch_add(1); }

/// Install a no-SA_RESTART handler so every signal interrupts syscalls with
/// EINTR — the raw condition the retry loops must absorb.
struct InterruptingSignal {
  struct sigaction old {};
  InterruptingSignal() {
    struct sigaction action {};
    action.sa_handler = count_signal;
    sigemptyset(&action.sa_mask);
    action.sa_flags = 0;  // deliberately NOT SA_RESTART
    sigaction(SIGUSR1, &action, &old);
  }
  ~InterruptingSignal() { sigaction(SIGUSR1, &old, nullptr); }
};

/// Pepper a blocked recv_some and a bulk send_all with signals: both must
/// complete as if uninterrupted.
TEST(ServiceSocketIo, SendAllAndRecvSomeSurviveEintr) {
  InterruptingSignal guard;
  Pair pair = Pair::make();
  pair.server.set_timeouts(5000, 5000);
  pair.client.set_timeouts(5000, 5000);

  const std::string payload(1 << 20, 'e');
  std::atomic<bool> done{false};
  pthread_t victim = pthread_self();

  std::thread io([&] {
    // This thread does the I/O; the main thread signals it.
    victim = pthread_self();
    std::string received;
    char buffer[8 * 1024];
    while (received.size() < payload.size()) {
      const RecvResult got = pair.client.recv_some(buffer, sizeof buffer);
      ASSERT_FALSE(got.error) << "recv_some surfaced EINTR as an error";
      if (got.closed) break;
      received.append(buffer, got.bytes);
    }
    EXPECT_EQ(received.size(), payload.size());
    done.store(true);
  });
  // Let the io thread publish its pthread id and block in recv.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  std::thread pepper([&] {
    while (!done.load()) {
      pthread_kill(victim, SIGUSR1);
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
  });

  // Trickle the payload so the receiver repeatedly re-enters recv (and
  // each re-entry is a fresh EINTR target).
  std::size_t offset = 0;
  while (offset < payload.size()) {
    const std::size_t chunk =
        std::min<std::size_t>(32 * 1024, payload.size() - offset);
    ASSERT_TRUE(pair.server.send_all(payload.data() + offset, chunk))
        << "send_all failed under signal pepper at offset " << offset;
    offset += chunk;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  io.join();
  pepper.join();
  EXPECT_GT(g_signals_seen.load(), 0) << "no signal ever landed; the EINTR "
                                         "path was not exercised";
}

/// accept(timeout) peppered with signals must still accept a connection
/// that arrives within the timeout (the EINTR-retry poll keeps waiting
/// with the remaining time instead of bailing).
TEST(ServiceSocketIo, AcceptSurvivesEintrDuringWait) {
  InterruptingSignal guard;
  auto listener = TcpListener::listen("127.0.0.1", 0);
  ASSERT_TRUE(listener.has_value());

  std::atomic<bool> done{false};
  pthread_t victim = pthread_self();
  std::atomic<bool> victim_ready{false};
  std::optional<TcpSocket> accepted;
  std::thread acceptor([&] {
    victim = pthread_self();
    victim_ready.store(true);
    accepted = listener->accept(3000);
    done.store(true);
  });
  while (!victim_ready.load()) std::this_thread::sleep_for(
      std::chrono::milliseconds(1));

  std::thread pepper([&] {
    while (!done.load()) {
      pthread_kill(victim, SIGUSR1);
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
  });
  // Connect late — after plenty of signals already interrupted the poll.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  auto client = tcp_connect("127.0.0.1", listener->port(), 1000);
  EXPECT_TRUE(client.has_value());
  acceptor.join();
  pepper.join();
  EXPECT_TRUE(accepted.has_value())
      << "accept() turned EINTR into a spurious timeout";
}

// --- non-blocking accept ----------------------------------------------------

TEST(ServiceSocketIo, AcceptNowNeverBlocks) {
  auto listener = TcpListener::listen("127.0.0.1", 0);
  ASSERT_TRUE(listener.has_value());
  listener->set_nonblocking(true);

  // Empty queue: immediate nullopt.
  const auto before = std::chrono::steady_clock::now();
  EXPECT_FALSE(listener->accept_now().has_value());
  EXPECT_LT(std::chrono::steady_clock::now() - before,
            std::chrono::milliseconds(100));

  // Queued connection: immediate success, then empty again.
  auto client = tcp_connect("127.0.0.1", listener->port(), 1000);
  ASSERT_TRUE(client.has_value());
  std::optional<TcpSocket> got;
  for (int i = 0; i < 100 && !got; ++i) {
    got = listener->accept_now();
    if (!got) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(got.has_value());
  EXPECT_FALSE(listener->accept_now().has_value());
}

}  // namespace
}  // namespace dcs::service
