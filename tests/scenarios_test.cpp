// Tests for the traffic scenarios: the semantic properties the detection
// layer depends on, verified through the exporter + exact tracker pipeline.
#include "net/scenarios.hpp"

#include <gtest/gtest.h>

#include "baselines/exact_tracker.hpp"
#include "detection/epoch_change.hpp"
#include "net/exporter.hpp"

namespace dcs {
namespace {

/// Run a timeline through the exporter and an exact tracker; return the
/// tracker (distinct half-open sources per destination).
ExactTracker track(std::vector<Packet> packets) {
  FlowUpdateExporter exporter;
  ExactTracker tracker;
  for (const Packet& packet : packets)
    exporter.observe(packet, [&tracker](const FlowUpdate& u) {
      tracker.update(u.dest, u.source, u.delta);
    });
  return tracker;
}

TEST(Timeline, FinalizeSortsByTimestamp) {
  Timeline timeline(1);
  timeline.add({50, 1, 2, PacketType::kSyn});
  timeline.add({10, 3, 4, PacketType::kSyn});
  timeline.add({30, 5, 6, PacketType::kSyn});
  const auto packets = timeline.finalize();
  ASSERT_EQ(packets.size(), 3u);
  EXPECT_EQ(packets[0].timestamp, 10u);
  EXPECT_EQ(packets[1].timestamp, 30u);
  EXPECT_EQ(packets[2].timestamp, 50u);
}

TEST(SynFlood, VictimAccumulatesDistinctHalfOpenSources) {
  Timeline timeline(2);
  SynFloodConfig flood;
  flood.spoofed_sources = 5000;
  add_syn_flood(timeline, flood);
  const ExactTracker tracker = track(timeline.finalize());
  EXPECT_EQ(tracker.frequency(flood.victim), 5000u);
}

TEST(SynFlood, RetransmissionsAddNoDistinctSources) {
  Timeline timeline(2);
  SynFloodConfig flood;
  flood.spoofed_sources = 1000;
  flood.resend_factor = 3;
  add_syn_flood(timeline, flood);
  const auto packets = timeline.finalize();
  EXPECT_EQ(packets.size(), 4000u);  // 1 + 3 resends per source
  const ExactTracker tracker = track(packets);
  EXPECT_EQ(tracker.frequency(flood.victim), 1000u);
}

TEST(FlashCrowd, CompletedHandshakesLeaveNoHalfOpenState) {
  Timeline timeline(3);
  FlashCrowdConfig crowd;
  crowd.clients = 5000;
  add_flash_crowd(timeline, crowd);
  const ExactTracker tracker = track(timeline.finalize());
  // Every client ACKs: net half-open distinct sources is zero.
  EXPECT_EQ(tracker.frequency(crowd.target), 0u);
}

TEST(FlashCrowd, MidStreamHalfOpenIsTransient) {
  // Before the ACKs arrive the target does show up; afterwards it is gone —
  // exactly the flash-crowd signature the paper's deletions capture.
  Timeline timeline(3);
  FlashCrowdConfig crowd;
  crowd.clients = 1000;
  crowd.handshake_delay = 100'000;  // all ACKs after all SYNs
  crowd.duration_ticks = 1000;
  add_flash_crowd(timeline, crowd);
  const auto packets = timeline.finalize();

  FlowUpdateExporter exporter;
  ExactTracker tracker;
  std::uint64_t peak = 0;
  for (const Packet& packet : packets) {
    exporter.observe(packet, [&tracker](const FlowUpdate& u) {
      tracker.update(u.dest, u.source, u.delta);
    });
    peak = std::max(peak, tracker.frequency(crowd.target));
  }
  EXPECT_EQ(peak, 1000u);                          // fully half-open mid-stream
  EXPECT_EQ(tracker.frequency(crowd.target), 0u);  // drained at the end
}

TEST(BackgroundTraffic, LeavesNoLingeringHalfOpenState) {
  Timeline timeline(4);
  BackgroundTrafficConfig background;
  background.sessions = 2000;
  add_background_traffic(timeline, background);
  const ExactTracker tracker = track(timeline.finalize());
  // All sessions complete their handshake.
  EXPECT_TRUE(tracker.top_k(1).entries.empty());
}

TEST(PortScan, ScannerTouchesManyDestinations) {
  Timeline timeline(5);
  PortScanConfig scan;
  scan.targets = 2000;
  add_port_scan(timeline, scan);

  // Rank by source: the scanner is the top group by distinct destinations.
  FlowUpdateExporter exporter;
  ExactTracker by_source;
  for (const Packet& packet : timeline.finalize())
    exporter.observe(packet, [&by_source](const FlowUpdate& u) {
      by_source.update(u.source, u.dest, u.delta);
    });
  const auto top = by_source.top_k(1).entries;
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].group, scan.scanner);
  // ~1/4 of probes get no RST and stay half-open.
  EXPECT_GT(top[0].estimate, 300u);
  EXPECT_LT(top[0].estimate, 800u);
}

TEST(ReflectorAttack, SpoofedVictimShowsOutboundFanout) {
  Timeline timeline(8);
  BackgroundTrafficConfig background;
  background.sessions = 3000;
  add_background_traffic(timeline, background);
  ReflectorAttackConfig attack;
  attack.reflectors = 4000;
  add_reflector_attack(timeline, attack);

  // Rank by source: the spoofed victim shows pathological outbound fan-out.
  FlowUpdateExporter exporter;
  ExactTracker by_source;
  for (const Packet& packet : timeline.finalize())
    exporter.observe(packet, [&by_source](const FlowUpdate& u) {
      by_source.update(u.source, u.dest, u.delta);
    });
  const auto top = by_source.top_k(1).entries;
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].group, attack.victim);
  EXPECT_EQ(top[0].estimate, 4000u);
}

TEST(ReflectorAttack, InvisibleWhenRankedByDestination) {
  // The reflector pattern spreads over thousands of destinations — each
  // reflector sees ONE half-open source, so destination-ranked monitoring
  // cannot see it. This is why the monitor supports both rankings.
  Timeline timeline(8);
  ReflectorAttackConfig attack;
  attack.reflectors = 4000;
  add_reflector_attack(timeline, attack);
  const ExactTracker tracker = track(timeline.finalize());
  const auto top = tracker.top_k(1).entries;
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].estimate, 1u);  // no destination accumulates anything
}

TEST(ComposedScenario, FloodStandsOutOverBackground) {
  Timeline timeline(6);
  BackgroundTrafficConfig background;
  background.sessions = 5000;
  add_background_traffic(timeline, background);
  SynFloodConfig flood;
  flood.spoofed_sources = 3000;
  add_syn_flood(timeline, flood);

  const ExactTracker tracker = track(timeline.finalize());
  const auto top = tracker.top_k(1).entries;
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].group, flood.victim);
  EXPECT_EQ(top[0].estimate, 3000u);
}

TEST(PulsingFlood, SawtoothsUnderTimeoutReaping) {
  Timeline timeline(9);
  PulsingFloodConfig pulse;
  pulse.bursts = 4;
  pulse.sources_per_burst = 1500;
  pulse.burst_ticks = 500;
  pulse.period_ticks = 10'000;
  add_pulsing_flood(timeline, pulse);
  const auto packets = timeline.finalize();

  // With SYN-timeout reaping shorter than the quiet gap, each burst's
  // half-open state drains before the next burst arrives.
  FlowUpdateExporter exporter(1000, /*half_open_timeout=*/3000);
  ExactTracker tracker;
  std::uint64_t peak = 0;
  std::uint64_t at_gap_end = 0;
  for (const Packet& packet : packets) {
    exporter.observe(packet, [&tracker](const FlowUpdate& u) {
      tracker.update(u.dest, u.source, u.delta);
    });
    peak = std::max(peak, tracker.frequency(pulse.victim));
    if (packet.timestamp >= 9000 && at_gap_end == 0)
      at_gap_end = tracker.frequency(pulse.victim);
  }
  EXPECT_GE(peak, 1400u);      // bursts are visible at full strength...
  EXPECT_LE(at_gap_end, 10u);  // ...but reaped before the next one
}

TEST(PulsingFlood, EachBurstFlagsInEpochChangeReports) {
  // Low-rate attacks hide from cumulative baselines; per-epoch differencing
  // surfaces every burst.
  Timeline timeline(10);
  BackgroundTrafficConfig background;
  background.sessions = 3000;
  background.duration_ticks = 40'000;
  add_background_traffic(timeline, background);
  PulsingFloodConfig pulse;
  pulse.bursts = 3;
  pulse.sources_per_burst = 2000;
  pulse.period_ticks = 12'000;
  pulse.start_tick = 2000;
  add_pulsing_flood(timeline, pulse);

  FlowUpdateExporter exporter(1000, /*half_open_timeout=*/4000);
  const auto updates = exporter.run(timeline.finalize());

  EpochChangeDetector::Config config;
  config.sketch.seed = 4;
  config.epoch_updates = 2048;
  config.top_k = 1;
  EpochChangeDetector detector(config);
  detector.ingest(updates);
  detector.close_epoch();

  int epochs_flagging_victim = 0;
  for (const auto& report : detector.reports())
    if (!report.top_changes.empty() &&
        report.top_changes[0].group == pulse.victim &&
        report.top_changes[0].estimate > 500)
      ++epochs_flagging_victim;
  EXPECT_GE(epochs_flagging_victim, 2)
      << "bursts should surface in multiple epoch reports";
}

TEST(Scenarios, SameSeedTimelinesAreDeterministic) {
  const auto build = [] {
    Timeline timeline(42);
    SynFloodConfig flood;
    flood.spoofed_sources = 100;
    add_syn_flood(timeline, flood);
    FlashCrowdConfig crowd;
    crowd.clients = 100;
    add_flash_crowd(timeline, crowd);
    return timeline.finalize();
  };
  EXPECT_EQ(build(), build());
}

}  // namespace
}  // namespace dcs
