// Tests for RunningStats, percentile, Options and binary serialization.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/options.hpp"
#include "common/random.hpp"
#include "common/serialize.hpp"
#include "common/stats.hpp"

namespace dcs {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.stddev(), 0.0);
}

TEST(RunningStats, MatchesClosedForm) {
  RunningStats stats;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(x);
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(stats.min(), 2.0);
  EXPECT_EQ(stats.max(), 9.0);
}

TEST(RunningStats, SingleValueHasZeroVariance) {
  RunningStats stats;
  stats.add(3.5);
  EXPECT_EQ(stats.variance(), 0.0);
  EXPECT_EQ(stats.min(), 3.5);
  EXPECT_EQ(stats.max(), 3.5);
}

TEST(Percentile, EndpointsAndMedian) {
  std::vector<double> xs{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 3.0);
}

TEST(Percentile, Interpolates) {
  std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.25), 2.5);
}

TEST(Percentile, RejectsBadInput) {
  EXPECT_THROW(percentile({}, 0.5), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, 1.5), std::invalid_argument);
}

TEST(Options, ParsesFlagsAndValues) {
  const char* argv[] = {"prog", "--u", "5000", "--full", "--name=zipf"};
  Options options(5, const_cast<char**>(argv));
  EXPECT_EQ(options.integer("u", 0), 5000);
  EXPECT_TRUE(options.flag("full"));
  EXPECT_EQ(options.str("name", ""), "zipf");
  EXPECT_EQ(options.integer("missing", 42), 42);
  EXPECT_FALSE(options.flag("missing"));
}

TEST(Options, ReadsEnvironmentFallback) {
  ::setenv("DCS_UNIT_TEST_KNOB", "17", 1);
  const char* argv[] = {"prog"};
  Options options(1, const_cast<char**>(argv));
  EXPECT_EQ(options.integer("unit-test-knob", 0), 17);
  ::unsetenv("DCS_UNIT_TEST_KNOB");
}

TEST(Options, CommandLineBeatsEnvironment) {
  ::setenv("DCS_PRIORITY", "1", 1);
  const char* argv[] = {"prog", "--priority", "2"};
  Options options(3, const_cast<char**>(argv));
  EXPECT_EQ(options.integer("priority", 0), 2);
  ::unsetenv("DCS_PRIORITY");
}

TEST(Serialize, RoundTripsPrimitives) {
  std::stringstream buffer;
  {
    BinaryWriter w(buffer);
    w.u8(200);
    w.u32(0xdeadbeef);
    w.u64(0x0123456789abcdefULL);
    w.i64(-42);
    w.f64(3.25);
    w.str("hello");
    w.pod_vector(std::vector<std::int64_t>{1, -2, 3});
  }
  BinaryReader r(buffer);
  EXPECT_EQ(r.u8(), 200);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_EQ(r.f64(), 3.25);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.pod_vector<std::int64_t>(), (std::vector<std::int64_t>{1, -2, 3}));
}

TEST(Serialize, DetectsTruncation) {
  std::stringstream buffer;
  BinaryWriter w(buffer);
  w.u32(7);
  BinaryReader r(buffer);
  EXPECT_EQ(r.u32(), 7u);
  EXPECT_THROW(r.u64(), SerializeError);
}

TEST(Serialize, HeaderRejectsWrongMagic) {
  std::stringstream buffer;
  {
    BinaryWriter w(buffer);
    write_header(w, 0x11111111, 1);
  }
  BinaryReader r(buffer);
  EXPECT_THROW(read_header(r, 0x22222222, 1), SerializeError);
}

TEST(Serialize, HeaderRejectsFutureVersion) {
  std::stringstream buffer;
  {
    BinaryWriter w(buffer);
    write_header(w, 0x33333333, 9);
  }
  BinaryReader r(buffer);
  EXPECT_THROW(read_header(r, 0x33333333, 2), SerializeError);
}

TEST(Serialize, RandomBytesNeverCrashTheDeserializer) {
  // Fuzz: arbitrary byte blobs must produce SerializeError, never UB.
  Xoshiro256 rng(42);
  for (int trial = 0; trial < 200; ++trial) {
    std::string blob(1 + rng.bounded(2048), '\0');
    for (char& c : blob) c = static_cast<char>(rng());
    std::stringstream buffer(blob);
    BinaryReader reader(buffer);
    try {
      reader.str();
      (void)reader.pod_vector<std::int64_t>();
    } catch (const SerializeError&) {
      // expected on malformed input
    }
  }
  SUCCEED();
}

TEST(Serialize, RejectsAbsurdLengths) {
  std::stringstream buffer;
  {
    BinaryWriter w(buffer);
    w.u64(1ULL << 40);  // claimed string length: 1 TiB
  }
  BinaryReader r(buffer);
  EXPECT_THROW(r.str(), SerializeError);
}

}  // namespace
}  // namespace dcs
