// Tests for the distributed (sharded) deployment: merge linearity across
// simulated routers.
#include "distributed/sharded_monitor.hpp"

#include <gtest/gtest.h>

#include "common/random.hpp"
#include "stream/generator.hpp"

namespace dcs {
namespace {

DcsParams params_with_seed(std::uint64_t seed) {
  DcsParams params;
  params.num_tables = 3;
  params.buckets_per_table = 64;
  params.seed = seed;
  return params;
}

TEST(Sharded, CollectEqualsSingleMonitor) {
  const DcsParams params = params_with_seed(4);
  ShardedMonitor sharded(params, 8);
  DistinctCountSketch single(params);

  ZipfWorkloadConfig config;
  config.u_pairs = 30'000;
  config.num_destinations = 300;
  config.skew = 1.5;
  config.churn = 1;
  const ZipfWorkload workload(config);
  for (const FlowUpdate& u : workload.updates()) {
    sharded.update(u.dest, u.source, u.delta);
    single.update(u.dest, u.source, u.delta);
  }

  EXPECT_TRUE(sharded.collect() == single);
  EXPECT_EQ(sharded.collect_tracking().top_k(10).entries,
            single.top_k(10).entries);
}

TEST(Sharded, RoutingIsDeterministicPerPair) {
  // Every update of a pair lands on the same shard: exactly one shard sees a
  // nonzero count for an isolated pair.
  const DcsParams params = params_with_seed(9);
  ShardedMonitor sharded(params, 4);
  sharded.update(1, 2, +1);
  sharded.update(1, 2, +1);
  int shards_touched = 0;
  for (std::size_t i = 0; i < sharded.num_shards(); ++i)
    if (sharded.shard(i).allocated_levels() > 0) ++shards_touched;
  EXPECT_EQ(shards_touched, 1);
}

TEST(Sharded, AsymmetricInsertDeleteCancelsAtCollector) {
  // Insert observed at router 0, delete at router 3 (asymmetric routing):
  // the union view must be empty.
  const DcsParams params = params_with_seed(6);
  ShardedMonitor sharded(params, 4);
  sharded.update_at(0, 10, 20, +1);
  sharded.update_at(3, 10, 20, -1);
  const DistinctCountSketch merged = sharded.collect();
  EXPECT_TRUE(merged == DistinctCountSketch(params));
  EXPECT_TRUE(merged.top_k(1).entries.empty());
}

TEST(Sharded, LoadSpreadsAcrossShards) {
  const DcsParams params = params_with_seed(8);
  ShardedMonitor sharded(params, 4);
  Xoshiro256 rng(3);
  for (int i = 0; i < 4000; ++i)
    sharded.update(static_cast<Addr>(rng.bounded(100)),
                   static_cast<Addr>(rng()), +1);
  for (std::size_t i = 0; i < sharded.num_shards(); ++i)
    EXPECT_GT(sharded.shard(i).allocated_levels(), 0) << "shard " << i;
}

TEST(Sharded, RejectsZeroShards) {
  EXPECT_THROW(ShardedMonitor(params_with_seed(1), 0), std::invalid_argument);
}

TEST(Sharded, MemoryIsSumOfShards) {
  const DcsParams params = params_with_seed(2);
  ShardedMonitor sharded(params, 3);
  std::size_t total = 0;
  for (std::size_t i = 0; i < 3; ++i) total += sharded.shard(i).memory_bytes();
  EXPECT_EQ(sharded.memory_bytes(), total);
}

}  // namespace
}  // namespace dcs
