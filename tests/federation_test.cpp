// Federation tests (docs/FEDERATION.md): the versioned Maglev shard map,
// the wire v4 payload additions, the root's gap-filling per-(site, epoch)
// dedup, and the two-tier relay differential — a multi-leaf federation's
// root sketch must be bit-identical to a single collector that saw every
// site directly. The full kill/reshard/drain soak lives in dcs_chaos
// --federation (the federation_smoke ctest entry); these tests pin each
// layer in isolation so a soak failure has a named culprit.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "service/agent.hpp"
#include "service/collector.hpp"
#include "service/federation/leaf.hpp"
#include "service/federation/shard_map.hpp"
#include "service/socket.hpp"
#include "service/wire.hpp"
#include "sketch/distinct_count_sketch.hpp"

namespace {

using namespace dcs;
using namespace dcs::service;

DcsParams small_params() {
  DcsParams params;
  params.num_tables = 3;
  params.buckets_per_table = 64;
  params.seed = 17;
  return params;
}

std::vector<LeafEndpoint> make_leaves(std::size_t n,
                                      std::uint16_t base_port = 7000) {
  std::vector<LeafEndpoint> leaves;
  for (std::size_t i = 0; i < n; ++i)
    leaves.push_back(LeafEndpoint{
        1001 + i, "127.0.0.1", static_cast<std::uint16_t>(base_port + i)});
  return leaves;
}

std::string serialize_sketch(const DistinctCountSketch& sketch) {
  std::ostringstream out(std::ios::binary);
  BinaryWriter writer(out);
  sketch.serialize(writer);
  return std::move(out).str();
}

// --- shard map ---------------------------------------------------------------

TEST(FederationShardMap, BuildIsDeterministicAndOrderInsensitive) {
  auto leaves = make_leaves(5);
  const ShardMap a = ShardMap::build(3, leaves);
  std::reverse(leaves.begin(), leaves.end());
  const ShardMap b = ShardMap::build(3, leaves);
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.encode(), b.encode());
  // And a pure function: rebuilding yields the identical table.
  EXPECT_TRUE(a == ShardMap::build(3, make_leaves(5)));
}

TEST(FederationShardMap, SlotsAreBalanced) {
  for (std::size_t n : {2u, 3u, 5u, 8u}) {
    const ShardMap map = ShardMap::build(1, make_leaves(n));
    const std::uint32_t ideal = map.table_size() / static_cast<std::uint32_t>(n);
    for (const LeafEndpoint& leaf : map.leaves()) {
      EXPECT_GE(map.slots_of(leaf.leaf_id), ideal > 2 ? ideal - 2 : 0u)
          << "n=" << n;
      EXPECT_LE(map.slots_of(leaf.leaf_id), ideal + 2) << "n=" << n;
    }
  }
}

TEST(FederationShardMap, RemovalRemapsAboutOneNth) {
  // The Maglev selling point: losing one of N leaves moves ~1/N of the
  // slots, not all of them. Pin a 2/N ceiling for every removable leaf.
  const std::size_t n = 5;
  const ShardMap before = ShardMap::build(1, make_leaves(n));
  for (std::size_t removed = 0; removed < n; ++removed) {
    std::vector<LeafEndpoint> rest;
    for (std::size_t i = 0; i < n; ++i)
      if (i != removed) rest.push_back(make_leaves(n)[i]);
    const ShardMap after = ShardMap::build(2, rest);
    const double moved = ShardMap::remap_fraction(before, after);
    EXPECT_GE(moved, 1.0 / static_cast<double>(n) - 0.05) << removed;
    EXPECT_LE(moved, 2.0 / static_cast<double>(n)) << removed;
  }
  // Naive modulo would move ~(n-1)/n; make sure we are nowhere near it.
  EXPECT_LT(ShardMap::remap_fraction(
                before, ShardMap::build(2, make_leaves(n - 1))),
            0.5);
}

TEST(FederationShardMap, LookupResolvesToAMemberLeaf) {
  const ShardMap map = ShardMap::build(1, make_leaves(4));
  for (std::uint64_t site = 1; site <= 500; ++site) {
    const std::uint64_t owner = map.leaf_for(site);
    const LeafEndpoint& endpoint = map.endpoint_for(site);
    EXPECT_EQ(endpoint.leaf_id, owner);
    EXPECT_EQ(map.endpoint_of(owner).port, endpoint.port);
  }
  EXPECT_THROW(map.endpoint_of(42), std::invalid_argument);
  EXPECT_THROW(ShardMap().leaf_for(1), std::logic_error);
}

TEST(FederationShardMap, BuildRejectsInvalidInput) {
  EXPECT_THROW(ShardMap::build(0, make_leaves(2)), std::invalid_argument);
  EXPECT_THROW(ShardMap::build(1, {}), std::invalid_argument);
  auto dup = make_leaves(2);
  dup[1].leaf_id = dup[0].leaf_id;
  EXPECT_THROW(ShardMap::build(1, dup), std::invalid_argument);
  EXPECT_THROW(ShardMap::build(1, make_leaves(2), 250),  // not prime
               std::invalid_argument);
}

TEST(FederationShardMap, EncodeDecodeRoundTripsExactly) {
  const ShardMap map = ShardMap::build(7, make_leaves(3));
  const ShardMap back = ShardMap::decode(map.encode());
  EXPECT_TRUE(map == back);
  EXPECT_EQ(back.version(), 7u);
  // The receiver rebuilt the table; every lookup must agree.
  for (std::uint64_t site = 1; site <= 100; ++site)
    EXPECT_EQ(map.leaf_for(site), back.leaf_for(site));
}

TEST(FederationShardMap, EveryCorruptByteIsRejected) {
  const std::string blob = ShardMap::build(2, make_leaves(3)).encode();
  for (std::size_t i = 0; i < blob.size(); ++i) {
    std::string bad = blob;
    bad[i] = static_cast<char>(bad[i] ^ 0x5a);
    EXPECT_THROW(ShardMap::decode(bad), SerializeError) << "byte " << i;
  }
  for (std::size_t len = 0; len < blob.size(); ++len)
    EXPECT_THROW(ShardMap::decode(blob.substr(0, len)), SerializeError)
        << "truncated to " << len;
}

TEST(FederationShardMap, FileRoundTripIsAtomicAndExact) {
  const auto dir = std::filesystem::temp_directory_path() / "dcs_fed_map_test";
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "map.bin").string();
  const ShardMap map = ShardMap::build(4, make_leaves(2));
  map.save_file(path);
  EXPECT_TRUE(ShardMap::load_file(path) == map);
  EXPECT_THROW(ShardMap::load_file((dir / "missing.bin").string()),
               SerializeError);
  std::filesystem::remove_all(dir);
}

TEST(FederationShardMap, CollectorOnlyAcceptsStrictlyNewerMaps) {
  CollectorConfig config;
  config.params = small_params();
  config.leaf_id = 1001;
  Collector collector(config);
  collector.set_shard_map(ShardMap::build(2, make_leaves(2)));
  EXPECT_EQ(collector.shard_map().version(), 2u);
  // Same and older versions are a rollback — refused, not applied.
  EXPECT_THROW(collector.set_shard_map(ShardMap::build(2, make_leaves(3))),
               std::invalid_argument);
  EXPECT_THROW(collector.set_shard_map(ShardMap::build(1, make_leaves(3))),
               std::invalid_argument);
  EXPECT_THROW(collector.set_shard_map(ShardMap()), std::invalid_argument);
  collector.set_shard_map(ShardMap::build(3, make_leaves(3)));
  EXPECT_EQ(collector.shard_map().version(), 3u);
  EXPECT_EQ(collector.stats().reshards, 2u);
}

// --- wire v4 -----------------------------------------------------------------

TEST(FederationWire, HelloCarriesRoleAndMapVersionAtV4Only) {
  Hello hello;
  hello.site_id = 9;
  hello.role = PeerRole::kLeaf;
  hello.map_version = 5;
  const Hello v4 = Hello::decode(hello.encode(4), 4);
  EXPECT_EQ(v4.role, PeerRole::kLeaf);
  EXPECT_EQ(v4.map_version, 5u);
  // v3 framing omits the fields; a decoder sees pre-federation defaults.
  const Hello v3 = Hello::decode(hello.encode(3), 3);
  EXPECT_EQ(v3.role, PeerRole::kSite);
  EXPECT_EQ(v3.map_version, 0u);
  EXPECT_LT(hello.encode(3).size(), hello.encode(4).size());
}

TEST(FederationWire, AckCarriesTheShardMapAtV4Only) {
  Ack ack;
  ack.epoch = 3;
  ack.status = AckStatus::kWrongShard;
  ack.map_version = 2;
  ack.map_blob = ShardMap::build(2, make_leaves(3)).encode();
  const Ack v4 = Ack::decode(ack.encode(4), 4);
  EXPECT_EQ(v4.status, AckStatus::kWrongShard);
  EXPECT_EQ(v4.map_version, 2u);
  const ShardMap pushed = ShardMap::decode(v4.map_blob);
  EXPECT_EQ(pushed.version(), 2u);
  EXPECT_EQ(pushed.leaves().size(), 3u);
  // v3 framing drops the map fields entirely — no oversized acks to
  // downlevel peers, and kWrongShard itself is never sent to them.
  Ack plain = ack;
  plain.status = AckStatus::kOk;
  const Ack v3 = Ack::decode(plain.encode(3), 3);
  EXPECT_EQ(v3.map_version, 0u);
  EXPECT_TRUE(v3.map_blob.empty());
  EXPECT_LT(plain.encode(3).size(), plain.encode(4).size());
}

// --- root gap ledger ---------------------------------------------------------

/// A raw leaf-uplink peer: Hello with role = kLeaf, then deltas carrying
/// *origin* site ids, exactly what LeafUplink speaks — but hand-driven so
/// the test controls delivery order.
struct RawLeafPeer {
  std::optional<TcpSocket> socket;
  FrameDecoder decoder;
  char buffer[4096];

  bool hello(std::uint16_t port, std::uint64_t leaf_id,
             const DcsParams& params) {
    socket = tcp_connect("127.0.0.1", port, 5000);
    if (!socket) return false;
    socket->set_timeouts(10000, 10000);
    Hello hello;
    hello.site_id = leaf_id;
    hello.role = PeerRole::kLeaf;
    hello.params_fingerprint = params.fingerprint();
    if (!socket->send_all(encode_frame(MsgType::kHello, hello.encode())))
      return false;
    const auto ack = read_ack();
    return ack.has_value() && ack->status == AckStatus::kOk;
  }

  std::optional<Ack> ship(const DcsParams& params, std::uint64_t site,
                          std::uint64_t epoch) {
    DistinctCountSketch sketch(params);
    sketch.update(static_cast<Addr>(site), static_cast<Addr>(epoch * 7919),
                  +1);
    SnapshotDelta delta;
    delta.site_id = site;
    delta.epoch = epoch;
    delta.updates = 1;
    delta.sketch_blob = serialize_sketch(sketch);
    if (!socket->send_all(
            encode_frame(MsgType::kSnapshotDelta, delta.encode())))
      return std::nullopt;
    return read_ack();
  }

  std::optional<Ack> read_ack() {
    for (;;) {
      if (auto frame = decoder.next()) {
        if (frame->type != MsgType::kAck) return std::nullopt;
        return Ack::decode(frame->payload, frame->version);
      }
      const RecvResult got = socket->recv_some(buffer, sizeof buffer);
      if (got.bytes == 0) return std::nullopt;
      decoder.feed(buffer, got.bytes);
    }
  }
};

TEST(FederationRoot, GapLedgerFillsOutOfOrderEpochsExactlyOnce) {
  CollectorConfig config;
  config.params = small_params();
  config.federation_root = true;
  config.run_detection = false;
  config.io_timeout_ms = 50;
  Collector root(config);
  root.start();

  RawLeafPeer peer;
  ASSERT_TRUE(peer.hello(root.port(), 1001, config.params));

  // Epoch 3 first: two gaps (1, 2) recorded as pending — awaited, not lost.
  auto ack = peer.ship(config.params, 7, 3);
  ASSERT_TRUE(ack.has_value());
  EXPECT_EQ(ack->status, AckStatus::kOk);
  EXPECT_EQ(root.stats().pending_gap_epochs, 2u);
  EXPECT_EQ(root.stats().dropped_epochs, 0u);

  // A second relay path (the drained journal) delivers 1 and 2: both fill
  // their gaps, the ledger drains, nothing is double-merged.
  ack = peer.ship(config.params, 7, 1);
  ASSERT_TRUE(ack.has_value());
  EXPECT_EQ(ack->status, AckStatus::kOk);
  ack = peer.ship(config.params, 7, 2);
  ASSERT_TRUE(ack.has_value());
  EXPECT_EQ(ack->status, AckStatus::kOk);
  EXPECT_EQ(root.stats().pending_gap_epochs, 0u);
  EXPECT_EQ(root.stats().gap_fills, 2u);

  // Re-delivery of a filled epoch is a duplicate, not a merge.
  ack = peer.ship(config.params, 7, 2);
  ASSERT_TRUE(ack.has_value());
  EXPECT_EQ(ack->status, AckStatus::kDuplicate);

  const auto stats = root.stats();
  EXPECT_EQ(stats.deltas_merged, 3u);
  EXPECT_EQ(stats.relayed_deltas, 3u);
  EXPECT_EQ(stats.duplicate_deltas, 1u);
  root.stop();

  // The merged sketch equals ingesting epochs 1..3 in order — gap-filling
  // is invisible to the linear merge.
  DistinctCountSketch reference(config.params);
  for (std::uint64_t epoch = 1; epoch <= 3; ++epoch)
    reference.update(static_cast<Addr>(7), static_cast<Addr>(epoch * 7919),
                     +1);
  EXPECT_EQ(serialize_sketch(root.merged_sketch()),
            serialize_sketch(reference));
}

TEST(FederationRoot, NonRootCollectorRefusesLeafUplinks) {
  CollectorConfig config;
  config.params = small_params();
  config.run_detection = false;
  config.io_timeout_ms = 50;
  Collector collector(config);
  collector.start();

  RawLeafPeer peer;
  EXPECT_FALSE(peer.hello(collector.port(), 1001, config.params));
  collector.stop();
}

TEST(FederationRoot, ShardedLeafBouncesForeignSitesWithTheMap) {
  CollectorConfig config;
  config.params = small_params();
  config.run_detection = false;
  config.io_timeout_ms = 50;
  config.leaf_id = 1001;
  Collector leaf(config);
  const ShardMap map = ShardMap::build(1, make_leaves(3));
  leaf.set_shard_map(map);
  leaf.start();

  // Find one site this leaf owns and one it does not.
  std::uint64_t owned = 0, foreign = 0;
  for (std::uint64_t site = 1; owned == 0 || foreign == 0; ++site) {
    (map.leaf_for(site) == 1001 ? owned : foreign) = site;
  }

  RawLeafPeer peer;  // role is set per call below via a plain Hello
  peer.socket = tcp_connect("127.0.0.1", leaf.port(), 5000);
  ASSERT_TRUE(peer.socket.has_value());
  peer.socket->set_timeouts(10000, 10000);
  Hello hello;
  hello.site_id = foreign;
  hello.params_fingerprint = config.params.fingerprint();
  ASSERT_TRUE(
      peer.socket->send_all(encode_frame(MsgType::kHello, hello.encode())));
  const auto ack = peer.read_ack();
  ASSERT_TRUE(ack.has_value());
  EXPECT_EQ(ack->status, AckStatus::kWrongShard);
  EXPECT_EQ(ack->map_version, 1u);
  const ShardMap pushed = ShardMap::decode(ack->map_blob);
  EXPECT_NE(pushed.leaf_for(foreign), 1001u);
  EXPECT_EQ(leaf.stats().wrong_shard_acks, 1u);

  RawLeafPeer owned_peer;
  owned_peer.socket = tcp_connect("127.0.0.1", leaf.port(), 5000);
  ASSERT_TRUE(owned_peer.socket.has_value());
  owned_peer.socket->set_timeouts(10000, 10000);
  Hello ok_hello;
  ok_hello.site_id = owned;
  ok_hello.params_fingerprint = config.params.fingerprint();
  ASSERT_TRUE(owned_peer.socket->send_all(
      encode_frame(MsgType::kHello, ok_hello.encode())));
  const auto ok_ack = owned_peer.read_ack();
  ASSERT_TRUE(ok_ack.has_value());
  EXPECT_EQ(ok_ack->status, AckStatus::kOk);
  leaf.stop();
}

// --- two-tier relay differential --------------------------------------------

TEST(FederationRelay, MultiLeafRootEqualsSingleCollectorBitForBit) {
  const DcsParams params = small_params();
  const std::uint64_t sites = 5;
  const std::uint64_t epochs = 6;

  CollectorConfig root_config;
  root_config.params = params;
  root_config.federation_root = true;
  root_config.run_detection = false;
  root_config.io_timeout_ms = 25;
  Collector root(root_config);
  root.start();

  std::vector<std::unique_ptr<LeafCollector>> leaves;
  std::vector<LeafEndpoint> endpoints;
  for (std::uint64_t id : {1001ull, 1002ull}) {
    LeafCollectorConfig leaf_config;
    leaf_config.collector.params = params;
    leaf_config.collector.io_timeout_ms = 25;
    leaf_config.collector.run_detection = false;
    leaf_config.collector.leaf_id = id;
    leaf_config.root_host = "127.0.0.1";
    leaf_config.root_port = root.port();
    leaves.push_back(std::make_unique<LeafCollector>(leaf_config));
    leaves.back()->start();
    endpoints.push_back(
        LeafEndpoint{id, "127.0.0.1", leaves.back()->collector().port()});
  }
  const ShardMap map = ShardMap::build(1, endpoints);
  for (auto& leaf : leaves) leaf->set_shard_map(map);

  DistinctCountSketch reference(params);
  std::vector<std::unique_ptr<SiteAgent>> agents;
  for (std::uint64_t site = 1; site <= sites; ++site) {
    SiteAgentConfig agent_config;
    agent_config.site_id = site;
    agent_config.collector_host = "127.0.0.1";
    agent_config.collector_port = endpoints[0].port;  // seed; map overrides
    agent_config.params = params;
    agent_config.epoch_updates = 50;
    agent_config.io_timeout_ms = 2000;
    agent_config.heartbeat_interval_ms = 100;
    agent_config.jitter_seed = site;
    agent_config.shard_map = map;
    agents.push_back(std::make_unique<SiteAgent>(agent_config));
    agents.back()->start();
    for (std::uint64_t i = 0; i < epochs * 50; ++i) {
      const Addr dest = static_cast<Addr>(site * 11 + i % 9);
      const Addr source = static_cast<Addr>(site * 100000 + i);
      agents.back()->ingest(FlowUpdate{.source = source, .dest = dest});
      reference.update(dest, source, +1);
    }
  }
  std::uint64_t total_sealed = 0;
  for (auto& agent : agents) {
    ASSERT_TRUE(agent->flush(15000));
    agent->stop(15000);
    total_sealed += agent->stats().epochs_sealed;
    EXPECT_EQ(agent->stats().epochs_dropped, 0u);
  }
  for (auto& leaf : leaves) leaf->stop(15000);

  ASSERT_TRUE(root.wait_for_deltas(total_sealed, 15000));
  const auto stats = root.stats();
  root.stop();
  EXPECT_EQ(stats.deltas_merged, total_sealed);
  EXPECT_EQ(stats.relayed_deltas, total_sealed);
  EXPECT_EQ(stats.dropped_epochs, 0u);
  EXPECT_EQ(stats.pending_gap_epochs, 0u);

  // The tentpole invariant: two tiers of linear merges are invisible.
  EXPECT_EQ(serialize_sketch(root.merged_sketch()),
            serialize_sketch(reference));
  const auto topk = root.top_k(8);
  const auto ref_topk = TrackingDcs(reference).top_k(8);
  ASSERT_EQ(topk.entries.size(), ref_topk.entries.size());
  for (std::size_t i = 0; i < topk.entries.size(); ++i) {
    EXPECT_EQ(topk.entries[i].group, ref_topk.entries[i].group);
    EXPECT_EQ(topk.entries[i].estimate, ref_topk.entries[i].estimate);
  }
}

}  // namespace
