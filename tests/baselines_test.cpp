// Tests for the comparison baselines: FM-PCSA, HyperLogLog, insert-only
// distinct sampling, Count-Min / volume heavy hitters, the superspreader
// filter, and the SYN-FIN CUSUM detector.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/count_min.hpp"
#include "baselines/distinct_sampler.hpp"
#include "baselines/exact_tracker.hpp"
#include "baselines/fm_sketch.hpp"
#include "baselines/hyperloglog.hpp"
#include "baselines/superspreader.hpp"
#include "baselines/syn_fin_cusum.hpp"
#include "common/random.hpp"
#include "stream/generator.hpp"

namespace dcs {
namespace {

TEST(FmPcsa, EstimatesWithinTolerance) {
  FmPcsa fm(256, 3);
  constexpr std::uint64_t kDistinct = 100'000;
  for (std::uint64_t i = 0; i < kDistinct; ++i) fm.add(mix64(i));
  const double estimate = fm.estimate();
  EXPECT_GT(estimate, 0.7 * kDistinct);
  EXPECT_LT(estimate, 1.3 * kDistinct);
}

TEST(FmPcsa, DuplicatesDoNotInflate) {
  FmPcsa fm(64, 3);
  for (int round = 0; round < 100; ++round)
    for (std::uint64_t i = 0; i < 100; ++i) fm.add(i);
  EXPECT_LT(fm.estimate(), 400.0);
}

TEST(FmPcsa, RejectsBadConstruction) {
  EXPECT_THROW(FmPcsa(0), std::invalid_argument);
}

TEST(HyperLogLog, EstimatesWithinTolerance) {
  HyperLogLog hll(12, 9);
  constexpr std::uint64_t kDistinct = 200'000;
  for (std::uint64_t i = 0; i < kDistinct; ++i) hll.add(i);
  const double estimate = hll.estimate();
  // Standard error ~1.04/sqrt(4096) = 1.6%; allow 6%.
  EXPECT_NEAR(estimate, static_cast<double>(kDistinct), 0.06 * kDistinct);
}

TEST(HyperLogLog, SmallRangeIsAccurate) {
  HyperLogLog hll(12, 9);
  for (std::uint64_t i = 0; i < 100; ++i) hll.add(i);
  EXPECT_NEAR(hll.estimate(), 100.0, 5.0);
}

TEST(HyperLogLog, MergeEqualsUnion) {
  HyperLogLog a(10, 5), b(10, 5), whole(10, 5);
  for (std::uint64_t i = 0; i < 50'000; ++i) {
    whole.add(i);
    (i % 2 ? a : b).add(i);
  }
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.estimate(), whole.estimate());
}

TEST(HyperLogLog, MergeRejectsPrecisionMismatch) {
  HyperLogLog a(10), b(12);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(HyperLogLog, RejectsBadPrecision) {
  EXPECT_THROW(HyperLogLog(3), std::invalid_argument);
  EXPECT_THROW(HyperLogLog(19), std::invalid_argument);
}

TEST(DistinctSampler, RefusesDeletions) {
  DistinctSampler sampler(128);
  EXPECT_THROW(sampler.update(1, 2, -1), std::invalid_argument);
}

TEST(DistinctSampler, SampleStaysWithinCapacity) {
  DistinctSampler sampler(100, 3);
  Xoshiro256 rng(2);
  for (int i = 0; i < 100'000; ++i)
    sampler.update(static_cast<Addr>(rng.bounded(500)),
                   static_cast<Addr>(rng()), +1);
  EXPECT_LE(sampler.sample_size(), 100u);
  EXPECT_GT(sampler.level(), 0);
}

TEST(DistinctSampler, DistinctEstimateIsReasonable) {
  DistinctSampler sampler(512, 3);
  constexpr std::uint64_t kPairs = 100'000;
  for (std::uint64_t i = 0; i < kPairs; ++i)
    sampler.update(static_cast<Addr>(i % 100), static_cast<Addr>(i), +1);
  const double estimate = static_cast<double>(sampler.estimate_distinct_pairs());
  EXPECT_GT(estimate, 0.7 * kPairs);
  EXPECT_LT(estimate, 1.4 * kPairs);
}

TEST(DistinctSampler, TopKFindsDominantGroup) {
  DistinctSampler sampler(1024, 4);
  // Group 7 gets 10000 distinct members, others get 100 each.
  for (Addr m = 0; m < 10'000; ++m) sampler.update(7, m, +1);
  for (Addr g = 0; g < 20; ++g)
    for (Addr m = 0; m < 100; ++m) sampler.update(g + 100, 50'000 + m, +1);
  const auto top = sampler.top_k(1);
  ASSERT_EQ(top.entries.size(), 1u);
  EXPECT_EQ(top.entries[0].group, 7u);
}

TEST(CountMin, NeverUnderestimatesInsertOnly) {
  CountMinSketch cms(4, 512, 3);
  Xoshiro256 rng(7);
  std::vector<std::pair<std::uint64_t, std::int64_t>> truth;
  for (std::uint64_t k = 0; k < 100; ++k) {
    const std::int64_t count = static_cast<std::int64_t>(rng.bounded(50)) + 1;
    truth.emplace_back(k, count);
    cms.add(k, count);
  }
  for (const auto& [key, count] : truth) EXPECT_GE(cms.estimate(key), count);
}

TEST(CountMin, SupportsNegativeUpdates) {
  CountMinSketch cms(4, 512, 3);
  cms.add(42, +10);
  cms.add(42, -10);
  EXPECT_EQ(cms.estimate(42), 0);
}

TEST(CountMin, HeavyKeyDominates) {
  CountMinSketch cms(4, 2048, 3);
  for (std::uint64_t k = 0; k < 1000; ++k) cms.add(k, 1);
  cms.add(99999, 10'000);
  EXPECT_GE(cms.estimate(99999), 10'000);
  EXPECT_LT(cms.estimate(5), 100);
}

TEST(CountMin, RejectsBadConstruction) {
  EXPECT_THROW(CountMinSketch(0, 16), std::invalid_argument);
  EXPECT_THROW(CountMinSketch(4, 1), std::invalid_argument);
}

TEST(VolumeHeavyHitters, RanksByVolumeNotDistinctSources) {
  // The failure mode the paper attacks: 5000 packets from ONE source beat
  // 1000 distinct single-packet sources on volume ranking.
  VolumeHeavyHitters volume(4, 4096, 5);
  for (int i = 0; i < 5000; ++i) volume.update(111, 1, +1);
  for (Addr s = 0; s < 1000; ++s) volume.update(222, s, +1);
  const auto top = volume.top_k(2);
  ASSERT_EQ(top.entries.size(), 2u);
  EXPECT_EQ(top.entries[0].group, 111u);
  EXPECT_GE(top.entries[0].estimate, 5000u);
}

TEST(Superspreader, DetectsWideScanner) {
  SuperspreaderFilter filter(1000, 8, 3);
  // Scanner touches 50k distinct destinations; normal hosts touch 10.
  for (Addr d = 0; d < 50'000; ++d) filter.add(0xbad, d);
  for (Addr s = 1; s <= 100; ++s)
    for (Addr d = 0; d < 10; ++d) filter.add(s, d);
  const auto spreaders = filter.superspreaders();
  ASSERT_GE(spreaders.size(), 1u);
  EXPECT_EQ(spreaders[0].source, 0xbadu);
  EXPECT_NEAR(static_cast<double>(spreaders[0].estimated_destinations), 50'000.0,
              10'000.0);
}

TEST(Superspreader, RepeatedFlowsDoNotInflate) {
  SuperspreaderFilter filter(100, 1, 3);  // rate 1: sample everything
  for (int repeat = 0; repeat < 1000; ++repeat)
    for (Addr d = 0; d < 50; ++d) filter.add(1, d);
  EXPECT_TRUE(filter.superspreaders().empty());  // 50 < threshold 100
}

TEST(Superspreader, RejectsBadConstruction) {
  EXPECT_THROW(SuperspreaderFilter(0), std::invalid_argument);
  EXPECT_THROW(SuperspreaderFilter(10, 0), std::invalid_argument);
}

TEST(SynFinCusum, QuietTrafficNeverAlarms) {
  SynFinCusum detector(0.15, 2.0);
  for (int i = 0; i < 1000; ++i)
    EXPECT_FALSE(detector.observe(100, 98));  // balanced SYN/FIN
  EXPECT_LT(detector.statistic(), 0.5);
}

TEST(SynFinCusum, FloodRaisesAlarm) {
  SynFinCusum detector(0.15, 2.0);
  for (int i = 0; i < 20; ++i) detector.observe(100, 98);
  bool alarmed = false;
  for (int i = 0; i < 20 && !alarmed; ++i)
    alarmed = detector.observe(5000, 100);  // SYNs swamp FINs
  EXPECT_TRUE(alarmed);
}

TEST(SynFinCusum, ResetClearsAlarm) {
  SynFinCusum detector(0.1, 1.0);
  for (int i = 0; i < 10; ++i) detector.observe(1000, 10);
  ASSERT_TRUE(detector.in_alarm());
  detector.reset();
  EXPECT_FALSE(detector.in_alarm());
}

TEST(SynFinCusum, StatisticIsNonNegativeAndRecorded) {
  SynFinCusum detector;
  detector.observe(0, 1000);  // more FINs than SYNs
  EXPECT_GE(detector.statistic(), 0.0);
  EXPECT_EQ(detector.history().size(), 1u);
}

TEST(SynFinCusum, RejectsBadConstruction) {
  EXPECT_THROW(SynFinCusum(-0.1, 1.0), std::invalid_argument);
  EXPECT_THROW(SynFinCusum(0.1, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace dcs
