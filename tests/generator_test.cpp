// Tests for the Zipf flow-update workload generator against ground truth.
#include "stream/generator.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <unordered_map>
#include <unordered_set>

#include "baselines/exact_tracker.hpp"

namespace dcs {
namespace {

TEST(Generator, TruthSumsToU) {
  ZipfWorkloadConfig config;
  config.u_pairs = 10'000;
  config.num_destinations = 100;
  config.skew = 1.5;
  const ZipfWorkload workload(config);
  std::uint64_t total = 0;
  for (const auto& [dest, freq] : workload.true_frequencies()) total += freq;
  EXPECT_EQ(total, 10'000u);
  EXPECT_EQ(workload.u_pairs(), 10'000u);
}

TEST(Generator, TruthIsSortedDescending) {
  ZipfWorkloadConfig config;
  config.u_pairs = 5000;
  config.num_destinations = 50;
  config.skew = 2.0;
  const ZipfWorkload workload(config);
  const auto& truth = workload.true_frequencies();
  for (std::size_t i = 1; i < truth.size(); ++i)
    EXPECT_GE(truth[i - 1].frequency, truth[i].frequency);
}

TEST(Generator, StreamMatchesTruthThroughExactTracker) {
  ZipfWorkloadConfig config;
  config.u_pairs = 20'000;
  config.num_destinations = 200;
  config.skew = 1.2;
  config.churn = 2;
  config.noise_pairs = 5000;
  const ZipfWorkload workload(config);

  ExactTracker tracker;
  for (const FlowUpdate& u : workload.updates())
    tracker.update(u.dest, u.source, u.delta);

  EXPECT_EQ(tracker.distinct_pairs(), 20'000u);
  for (const auto& [dest, freq] : workload.true_frequencies())
    EXPECT_EQ(tracker.frequency(dest), freq) << "dest " << dest;
}

TEST(Generator, PairsAreDistinct) {
  ZipfWorkloadConfig config;
  config.u_pairs = 5000;
  config.num_destinations = 10;
  config.skew = 0.0;
  config.shuffle = false;
  const ZipfWorkload workload(config);
  std::unordered_set<PairKey> pairs;
  for (const FlowUpdate& u : workload.updates()) {
    ASSERT_EQ(u.delta, +1);  // churn=0, noise=0: pure inserts
    EXPECT_TRUE(pairs.insert(pack_pair(u.dest, u.source)).second);
  }
  EXPECT_EQ(pairs.size(), 5000u);
}

TEST(Generator, UpdateCountMatchesChurnAndNoise) {
  ZipfWorkloadConfig config;
  config.u_pairs = 1000;
  config.num_destinations = 10;
  config.churn = 3;
  config.noise_pairs = 500;
  const ZipfWorkload workload(config);
  // u*(1+2*churn) + 2*noise.
  EXPECT_EQ(workload.updates().size(), 1000u * 7 + 1000u);
}

TEST(Generator, SameSeedIsDeterministic) {
  ZipfWorkloadConfig config;
  config.u_pairs = 2000;
  config.num_destinations = 20;
  config.seed = 42;
  const ZipfWorkload a(config), b(config);
  EXPECT_EQ(a.updates(), b.updates());
  EXPECT_EQ(a.true_frequencies(), b.true_frequencies());
}

TEST(Generator, DifferentSeedsDiffer) {
  ZipfWorkloadConfig config;
  config.u_pairs = 2000;
  config.num_destinations = 20;
  config.seed = 1;
  const ZipfWorkload a(config);
  config.seed = 2;
  const ZipfWorkload b(config);
  EXPECT_NE(a.updates(), b.updates());
}

TEST(Generator, HighSkewConcentratesOnTopDestination) {
  ZipfWorkloadConfig config;
  config.u_pairs = 50'000;
  config.num_destinations = 1000;
  config.skew = 2.5;
  const ZipfWorkload workload(config);
  const auto top = workload.true_top_k(5);
  const std::uint64_t top5 = std::accumulate(
      top.begin(), top.end(), std::uint64_t{0},
      [](std::uint64_t acc, const DestFrequency& d) { return acc + d.frequency; });
  // Paper §6.2: >95% of mass in the top 5 at z=2.5.
  EXPECT_GT(static_cast<double>(top5) / 50'000.0, 0.95);
}

TEST(Generator, TrueTopKClampsToDestinationCount) {
  ZipfWorkloadConfig config;
  config.u_pairs = 100;
  config.num_destinations = 3;
  const ZipfWorkload workload(config);
  EXPECT_EQ(workload.true_top_k(10).size(), 3u);
}

TEST(Generator, RejectsZeroPairs) {
  ZipfWorkloadConfig config;
  config.u_pairs = 0;
  EXPECT_THROW(ZipfWorkload{config}, std::invalid_argument);
}

}  // namespace
}  // namespace dcs
