// Coverage for smaller API surfaces not exercised elsewhere: partial
// simulator runs, topology introspection, volume heavy-hitter eviction,
// concurrent monitor pass-throughs, and sample collection internals.
#include <gtest/gtest.h>

#include <memory>

#include "baselines/count_min.hpp"
#include "common/random.hpp"
#include "distributed/concurrent_monitor.hpp"
#include "sim/agents.hpp"
#include "sim/simulator.hpp"
#include "sim/topology.hpp"
#include "sketch/distinct_count_sketch.hpp"
#include "sketch/tracking_dcs.hpp"

namespace dcs {
namespace {

TEST(SimulatorRunUntil, StopsAtTheDeadlineAndResumes) {
  sim::Topology topology;
  const auto edges = sim::make_isp_topology(topology, 3);
  constexpr Addr kServer = 900;
  topology.attach_host(kServer, edges[1]);
  sim::Simulator simulator(std::move(topology));

  auto server = std::make_unique<sim::ServerBehavior>(
      sim::ServerBehavior::Config{.address = kServer});
  auto* server_ptr = server.get();
  simulator.set_behavior(kServer, std::move(server));

  Xoshiro256 rng(5);
  sim::launch_spoofed_flood(simulator, edges[0], kServer, /*start=*/0,
                            /*duration=*/1000, /*count=*/100, 7, rng);
  sim::launch_spoofed_flood(simulator, edges[0], kServer, /*start=*/5000,
                            /*duration=*/1000, /*count=*/100, 8, rng);

  simulator.run(/*until=*/3000);
  const std::size_t after_first = server_ptr->half_open();
  EXPECT_EQ(after_first, 100u);  // only the first wave has landed
  EXPECT_LE(simulator.now(), 3000u);

  simulator.run();  // drain
  EXPECT_EQ(server_ptr->half_open(), 200u);
}

TEST(TopologyIntrospection, NamesAndLatencies) {
  sim::Topology topology;
  const auto a = topology.add_router("alpha");
  const auto b = topology.add_router("beta");
  topology.add_link(a, b, 7);
  topology.build_routes();
  EXPECT_EQ(topology.router_name(a), "alpha");
  EXPECT_EQ(topology.link_latency(a, b), 7u);
  EXPECT_THROW(topology.link_latency(a, a), std::invalid_argument);
  EXPECT_THROW(topology.add_router("late"), std::logic_error);
  EXPECT_THROW(topology.add_link(a, b, 2), std::logic_error);
}

TEST(VolumeHeavyHitters, EvictionKeepsTheHeavyGroups) {
  // Exceed the internal candidate budget (4096) with light groups; a heavy
  // group must survive the pruning.
  VolumeHeavyHitters volume(4, 1 << 15, 9);
  for (int i = 0; i < 20'000; ++i) volume.update(42, 1, +1);  // heavy
  for (Addr g = 1000; g < 7000; ++g) volume.update(g, 1, +1);  // 6000 lights
  const auto top = volume.top_k(1);
  ASSERT_FALSE(top.entries.empty());
  EXPECT_EQ(top.entries[0].group, 42u);
  // The candidate set was pruned to stay bounded.
  EXPECT_LE(volume.top_k(100'000).entries.size(), 4096u);
}

TEST(ConcurrentMonitor, TopKConvenienceMatchesSnapshot) {
  DcsParams params;
  params.buckets_per_table = 64;
  params.seed = 2;
  ConcurrentMonitor monitor(params, 2);
  for (Addr s = 0; s < 200; ++s) monitor.update(9, s, +1);
  EXPECT_EQ(monitor.top_k(1).entries, monitor.snapshot().top_k(1).entries);
  EXPECT_EQ(monitor.num_stripes(), 2u);
}

TEST(CollectSample, ReportsInferenceLevelAndKeys) {
  DcsParams params;
  params.seed = 4;
  DistinctCountSketch sketch(params);
  Xoshiro256 rng(6);
  for (int i = 0; i < 50'000; ++i)
    sketch.update(static_cast<Addr>(rng.bounded(100)), static_cast<Addr>(rng()),
                  +1);
  const auto sample = sketch.collect_sample();
  EXPECT_GE(sample.keys.size(), params.sample_target());
  EXPECT_GT(sample.inference_level, 0);
  // Every sampled key must genuinely live at a level >= the inference level.
  for (const PairKey key : sample.keys)
    EXPECT_GE(sketch.level_of(key), sample.inference_level);
}

TEST(Quickstart, ReadmeSnippetCompilesAndRuns) {
  // The README's minimal usage block, kept honest by compilation.
  DcsParams params;
  params.seed = 42;
  TrackingDcs tracker(params);
  const Addr dest = 1, source = 2;
  tracker.update(dest, source, +1);
  tracker.update(dest, source, -1);
  EXPECT_TRUE(tracker.top_k(10).entries.empty());
}

}  // namespace
}  // namespace dcs
