// Query-tier tests: snapshot codec, retention, corruption fallback, the
// response cache, and the headline guarantee — every answer served from a
// published snapshot is bit-identical to the same query against the source
// collector at the published epoch watermark (sketch linearity: rebuilding
// TrackingDcs over the embedded sketch reproduces the collector's tracking
// state exactly).
//
// Also the HTTP error-path contract of the shared obs server (WireHttp*):
// every response — including 400/404/405 — carries an exact Content-Length
// and Connection: close, and non-GET methods answer 405 with Allow: GET.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/http_export.hpp"
#include "obs/instruments.hpp"
#include "obs/metrics.hpp"
#include "query/engine.hpp"
#include "query/publisher.hpp"
#include "query/server.hpp"
#include "query/snapshot.hpp"
#include "service/agent.hpp"
#include "service/collector.hpp"
#include "service/socket.hpp"
#include "sketch/tracking_dcs.hpp"
#include "stream/generator.hpp"

namespace dcs::query {
namespace {

namespace fs = std::filesystem;

DcsParams small_params() {
  DcsParams params;
  params.num_tables = 3;
  params.buckets_per_table = 64;
  params.seed = 17;
  return params;
}

/// Fresh scratch directory per test.
std::string scratch_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / ("dcs_query_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

QuerySnapshot sample_snapshot(std::uint64_t generation) {
  QuerySnapshot snapshot;
  snapshot.generation = generation;
  snapshot.published_unix_ns = 1234567890ull + generation;
  snapshot.epoch_watermark = 40 + generation;
  snapshot.deltas_merged = 100 * generation;
  snapshot.active_alarms = 1;
  snapshot.distinct_pairs = 777;

  Alert raised;
  raised.kind = Alert::Kind::kRaised;
  raised.subject = 0xbeef;
  raised.estimated_frequency = 9000;
  raised.baseline = 12.5;
  raised.stream_position = 4096;
  raised.epoch = 7;
  raised.threshold = 512.0;
  Alert cleared = raised;
  cleared.kind = Alert::Kind::kCleared;
  cleared.epoch = 9;
  snapshot.alerts = {raised, cleared};

  snapshot.top_k.entries = {{0xbeef, 9000}, {0xcafe, 123}};
  snapshot.top_k.inference_level = 2;
  snapshot.top_k.sample_size = 4096;

  DistinctCountSketch sketch(small_params());
  for (std::uint32_t i = 0; i < 200; ++i)
    sketch.update(i % 7, i, +1);
  snapshot.checkpoint.generation = generation;
  snapshot.checkpoint.sketch = sketch;
  snapshot.checkpoint.sites = {{1, 42, 42, 21000, 0, 3}};
  snapshot.checkpoint.deltas_merged = 100 * generation;
  snapshot.checkpoint.detector_blob = "opaque-detector-bytes";
  return snapshot;
}

void expect_snapshot_equal(const QuerySnapshot& a, const QuerySnapshot& b) {
  EXPECT_EQ(a.generation, b.generation);
  EXPECT_EQ(a.published_unix_ns, b.published_unix_ns);
  EXPECT_EQ(a.epoch_watermark, b.epoch_watermark);
  EXPECT_EQ(a.deltas_merged, b.deltas_merged);
  EXPECT_EQ(a.active_alarms, b.active_alarms);
  EXPECT_EQ(a.distinct_pairs, b.distinct_pairs);
  ASSERT_EQ(a.alerts.size(), b.alerts.size());
  for (std::size_t i = 0; i < a.alerts.size(); ++i) {
    EXPECT_EQ(a.alerts[i].kind, b.alerts[i].kind);
    EXPECT_EQ(a.alerts[i].subject, b.alerts[i].subject);
    EXPECT_EQ(a.alerts[i].estimated_frequency,
              b.alerts[i].estimated_frequency);
    EXPECT_EQ(a.alerts[i].baseline, b.alerts[i].baseline);
    EXPECT_EQ(a.alerts[i].stream_position, b.alerts[i].stream_position);
    EXPECT_EQ(a.alerts[i].epoch, b.alerts[i].epoch);
    EXPECT_EQ(a.alerts[i].threshold, b.alerts[i].threshold);
  }
  ASSERT_EQ(a.top_k.entries.size(), b.top_k.entries.size());
  for (std::size_t i = 0; i < a.top_k.entries.size(); ++i) {
    EXPECT_EQ(a.top_k.entries[i].group, b.top_k.entries[i].group);
    EXPECT_EQ(a.top_k.entries[i].estimate, b.top_k.entries[i].estimate);
  }
  EXPECT_EQ(a.top_k.inference_level, b.top_k.inference_level);
  EXPECT_EQ(a.top_k.sample_size, b.top_k.sample_size);
  EXPECT_EQ(a.checkpoint.generation, b.checkpoint.generation);
  EXPECT_TRUE(a.checkpoint.sketch == b.checkpoint.sketch);
  EXPECT_EQ(a.checkpoint.detector_blob, b.checkpoint.detector_blob);
  ASSERT_EQ(a.checkpoint.sites.size(), b.checkpoint.sites.size());
  for (std::size_t i = 0; i < a.checkpoint.sites.size(); ++i) {
    EXPECT_EQ(a.checkpoint.sites[i].site_id, b.checkpoint.sites[i].site_id);
    EXPECT_EQ(a.checkpoint.sites[i].last_epoch,
              b.checkpoint.sites[i].last_epoch);
  }
}

// --- codec ------------------------------------------------------------------

TEST(QueryCodec, RoundTripsEveryField) {
  const QuerySnapshot original = sample_snapshot(3);
  const std::string bytes = SnapshotStore::encode(original);
  const QuerySnapshot back = SnapshotStore::decode(bytes);
  expect_snapshot_equal(original, back);
}

TEST(QueryCodec, RejectsCorruptBytesEverywhere) {
  // A snapshot must decode entirely or not at all: flipping a byte makes
  // decode throw (header checks or the CRC footer), never a partial or
  // garbled snapshot. The sketch blob makes the file big, so probe a dense
  // prefix (header + manifest), a sample across the body, and the tail —
  // the CRC covers every byte identically.
  const std::string bytes = SnapshotStore::encode(sample_snapshot(1));
  std::vector<std::size_t> positions;
  for (std::size_t i = 0; i < 96 && i < bytes.size(); ++i)
    positions.push_back(i);
  for (std::size_t i = 96; i < bytes.size(); i += bytes.size() / 64 + 1)
    positions.push_back(i);
  for (std::size_t i = 1; i <= 8 && i <= bytes.size(); ++i)
    positions.push_back(bytes.size() - i);
  for (const std::size_t i : positions) {
    std::string corrupt = bytes;
    corrupt[i] ^= 0x20;
    EXPECT_THROW(SnapshotStore::decode(corrupt), SerializeError) << i;
  }
  EXPECT_THROW(SnapshotStore::decode(bytes + "x"), SerializeError);
  EXPECT_THROW(SnapshotStore::decode(bytes.substr(0, bytes.size() - 1)),
               SerializeError);
}

TEST(QueryCodec, LoadRejectsFileNameGenerationMismatch) {
  // A snapshot renamed to another generation's slot must not impersonate
  // it — the payload's generation is authoritative.
  SnapshotStore store(scratch_dir("name_mismatch"));
  store.write(sample_snapshot(1));
  fs::rename(store.path(1), store.path(9));
  EXPECT_FALSE(store.load(9).has_value());
}

// --- store: listing, retention, fallback ------------------------------------

TEST(QueryStore, ListsWritesAndPrunesByRetention) {
  SnapshotStore store(scratch_dir("retention"), /*retain=*/3);
  for (std::uint64_t generation = 1; generation <= 5; ++generation) {
    store.write(sample_snapshot(generation));
    store.prune_retained(generation);
  }
  EXPECT_EQ(store.generations(), (std::vector<std::uint64_t>{3, 4, 5}));
  EXPECT_EQ(store.max_generation(), 5u);

  // Exact boundary: retain=3 with newest=3 keeps 1..3 (nothing below 1).
  SnapshotStore boundary(scratch_dir("retention_boundary"), /*retain=*/3);
  for (std::uint64_t generation = 1; generation <= 3; ++generation)
    boundary.write(sample_snapshot(generation));
  boundary.prune_retained(3);
  EXPECT_EQ(boundary.generations(), (std::vector<std::uint64_t>{1, 2, 3}));
}

TEST(QueryStore, RejectsZeroRetention) {
  EXPECT_THROW(SnapshotStore(scratch_dir("zero_retain"), 0),
               std::invalid_argument);
}

TEST(QueryStore, LoadLatestWalksBackOverCorruptNewest) {
  SnapshotStore store(scratch_dir("fallback"));
  store.write(sample_snapshot(1));
  store.write(sample_snapshot(2));
  {
    // Torn newest: truncate to half, as if the publisher died mid-write
    // and something other than the atomic rename path produced the file.
    std::fstream file(store.path(2),
                      std::ios::binary | std::ios::in | std::ios::out);
    file.seekp(40);
    file.put('\x7f');
  }
  std::uint64_t corrupt_skipped = 0;
  const auto latest = store.load_latest(&corrupt_skipped);
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->generation, 1u);
  EXPECT_EQ(corrupt_skipped, 1u);
}

// --- engine: mapping, fallback, cache ---------------------------------------

TEST(QueryEngineTest, MapsNewGenerationsAndUnmapsPruned) {
  const std::string dir = scratch_dir("engine_map");
  SnapshotStore store(dir, /*retain=*/2);
  QueryEngine engine(QueryEngineConfig{dir, 16});

  store.write(sample_snapshot(1));
  EXPECT_EQ(engine.refresh(), 1u);
  EXPECT_EQ(engine.refresh(), 0u);  // idempotent: nothing new
  ASSERT_TRUE(engine.newest());
  EXPECT_EQ(engine.newest()->snapshot.generation, 1u);

  store.write(sample_snapshot(2));
  store.write(sample_snapshot(3));
  store.prune_retained(3);  // deletes generation 1
  EXPECT_EQ(engine.refresh(), 2u);
  EXPECT_EQ(engine.loaded_generations(),
            (std::vector<std::uint64_t>{2, 3}));
  EXPECT_FALSE(engine.at_generation(1));
  EXPECT_EQ(engine.newest()->snapshot.generation, 3u);

  // Time travel by epoch watermark (sample watermark = 40 + generation).
  ASSERT_TRUE(engine.at_epoch_at_most(42));
  EXPECT_EQ(engine.at_epoch_at_most(42)->snapshot.generation, 2u);
  EXPECT_FALSE(engine.at_epoch_at_most(1));
}

TEST(QueryEngineTest, CorruptNewestFallsBackToPreviousGeneration) {
  const std::string dir = scratch_dir("engine_fallback");
  SnapshotStore store(dir);
  store.write(sample_snapshot(1));
  store.write(sample_snapshot(2));
  {
    std::fstream file(store.path(2),
                      std::ios::binary | std::ios::in | std::ios::out);
    file.seekp(52);
    file.put('\x55');
  }
  QueryEngine engine(QueryEngineConfig{dir, 16});
  engine.refresh();
  ASSERT_TRUE(engine.newest());
  EXPECT_EQ(engine.newest()->snapshot.generation, 1u);
}

TEST(QueryEngineTest, CacheReturnsIdenticalBytesAndInvalidatesByGeneration) {
  obs::set_enabled(true);
  const std::string dir = scratch_dir("engine_cache");
  QueryEngine engine(QueryEngineConfig{dir, /*cache_entries=*/2});

  std::atomic<int> renders{0};
  const auto render = [&renders] {
    ++renders;
    return std::string("body-v") + std::to_string(renders.load());
  };

  const std::string first = engine.cached(1, "/topk?k=3", render);
  const std::string again = engine.cached(1, "/topk?k=3", render);
  EXPECT_EQ(first, "body-v1");
  EXPECT_EQ(again, first);  // identical bytes, render ran once
  EXPECT_EQ(renders.load(), 1);

  // A new generation is a new key — the old entry stays byte-stable.
  const std::string next = engine.cached(2, "/topk?k=3", render);
  EXPECT_EQ(next, "body-v2");
  EXPECT_EQ(engine.cached(1, "/topk?k=3", render), first);
  EXPECT_EQ(renders.load(), 2);

  // LRU bound: capacity 2, inserting a third key evicts the oldest.
  engine.cached(3, "/topk?k=3", render);
  EXPECT_EQ(engine.cache_size(), 2u);
}

// --- publisher + engine against a live collector ----------------------------

/// Drive a real collector over loopback, publish, and check the headline
/// guarantee: every answer computed from the snapshot equals the same
/// query against the live collector, bit for bit.
TEST(QueryLiveEquivalence, SnapshotAnswersMatchCollectorExactly) {
  service::CollectorConfig config;
  config.params = small_params();
  config.io_timeout_ms = 50;
  service::Collector collector(config);
  collector.start();

  ZipfWorkloadConfig workload;
  workload.u_pairs = 4000;
  workload.num_destinations = 40;
  workload.skew = 1.3;
  workload.seed = 23;
  const auto updates = ZipfWorkload(workload).updates();

  service::SiteAgentConfig agent_config;
  agent_config.site_id = 1;
  agent_config.collector_port = collector.port();
  agent_config.params = small_params();
  agent_config.epoch_updates = 500;
  agent_config.io_timeout_ms = 1000;
  service::SiteAgent agent(agent_config);
  agent.start();
  for (const auto& update : updates) agent.ingest(update);
  ASSERT_TRUE(agent.flush(10000));
  agent.stop();
  ASSERT_TRUE(collector.wait_for_deltas(updates.size() / 500, 10000));

  const std::string dir = scratch_dir("live_equivalence");
  SnapshotPublisherConfig publish_config;
  publish_config.publish_dir = dir;
  publish_config.top_k = 5;
  SnapshotPublisher publisher(
      publish_config,
      [&collector](std::size_t k) { return collector.query_publish_state(k); });
  const std::uint64_t generation = publisher.publish_now();
  ASSERT_GT(generation, 0u);

  QueryEngine engine(QueryEngineConfig{dir, 16});
  ASSERT_EQ(engine.refresh(), 1u);
  const auto loaded = engine.newest();
  ASSERT_TRUE(loaded);

  // Bit-for-bit: the rebuilt sketch state IS the collector's.
  EXPECT_TRUE(loaded->snapshot.checkpoint.sketch == collector.merged_sketch());

  // Top-k at the published depth and beyond it (recomputed path).
  for (const std::size_t k : {std::size_t{3}, std::size_t{5}, std::size_t{9}}) {
    const TopKResult live = collector.top_k(k);
    const TopKResult served = loaded->tracking.top_k(k);
    ASSERT_EQ(served.entries.size(), live.entries.size()) << "k=" << k;
    for (std::size_t i = 0; i < live.entries.size(); ++i) {
      EXPECT_EQ(served.entries[i].group, live.entries[i].group);
      EXPECT_EQ(served.entries[i].estimate, live.entries[i].estimate);
    }
    EXPECT_EQ(served.inference_level, live.inference_level);
    EXPECT_EQ(served.sample_size, live.sample_size);
  }

  // Point frequencies for every destination in the workload.
  for (std::uint32_t dest = 0; dest < 40; ++dest)
    EXPECT_EQ(loaded->tracking.estimate_frequency(dest),
              collector.estimate_frequency(dest))
        << "dest=" << dest;

  // Manifest answers captured under the same lock acquisition.
  EXPECT_EQ(loaded->snapshot.distinct_pairs,
            TrackingDcs(collector.merged_sketch()).estimate_distinct_pairs());
  EXPECT_EQ(loaded->snapshot.alerts.size(), collector.alerts().size());
  EXPECT_EQ(loaded->snapshot.active_alarms, collector.active_alarm_count());
  EXPECT_EQ(loaded->snapshot.deltas_merged, collector.stats().deltas_merged);
  EXPECT_EQ(loaded->snapshot.epoch_watermark,
            collector.site_stats().at(0).last_epoch);

  collector.stop();
}

TEST(QueryPublisherTest, ResumesNumberingAboveExistingGenerations) {
  const std::string dir = scratch_dir("publisher_resume");
  const auto provider = [](std::size_t k) {
    service::QueryPublishState state;
    state.checkpoint.sketch = DistinctCountSketch(small_params());
    state.top_k.entries.resize(0);
    (void)k;
    return state;
  };
  SnapshotPublisherConfig config;
  config.publish_dir = dir;
  {
    SnapshotPublisher publisher(config, provider);
    EXPECT_EQ(publisher.publish_now(), 1u);
    EXPECT_EQ(publisher.publish_now(), 2u);
  }
  {
    // Restarted publisher continues above what is on disk.
    SnapshotPublisher publisher(config, provider);
    EXPECT_EQ(publisher.publish_now(), 3u);
  }
}

// --- HTTP routes end to end -------------------------------------------------

std::string http_get(std::uint16_t port, const std::string& request) {
  auto socket = service::tcp_connect("127.0.0.1", port, 2000);
  if (!socket) return {};
  socket->set_timeouts(2000, 2000);
  if (!socket->send_all(request)) return {};
  std::string response;
  char buffer[4096];
  for (;;) {
    const auto got = socket->recv_some(buffer, sizeof buffer);
    if (got.bytes == 0) break;
    response.append(buffer, got.bytes);
  }
  return response;
}

std::string get_path(std::uint16_t port, const std::string& path) {
  return http_get(port, "GET " + path + " HTTP/1.1\r\nHost: x\r\n\r\n");
}

/// Header value, or "" when absent.
std::string header_value(const std::string& response, const std::string& name) {
  const std::string needle = "\r\n" + name + ": ";
  const auto at = response.find(needle);
  if (at == std::string::npos) return {};
  const auto start = at + needle.size();
  return response.substr(start, response.find("\r\n", start) - start);
}

std::string body_of(const std::string& response) {
  const auto at = response.find("\r\n\r\n");
  return at == std::string::npos ? std::string{} : response.substr(at + 4);
}

TEST(QueryServerHttp, ServesEveryRouteWithTimeTravel) {
  const std::string dir = scratch_dir("server_routes");
  SnapshotStore store(dir);
  store.write(sample_snapshot(1));  // watermark 41
  store.write(sample_snapshot(2));  // watermark 42

  QueryServerConfig config;
  config.publish_dir = dir;
  config.watch_every_ms = 50;
  QueryServer server(std::move(config));
  server.start();
  ASSERT_GT(server.port(), 0);

  // Newest wins by default; the manifest names the generation.
  const std::string topk = get_path(server.port(), "/topk");
  EXPECT_NE(topk.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(topk.find("\"generation\": 2"), std::string::npos);
  EXPECT_NE(topk.find("\"group\": \"0000beef\", \"estimate\": 9000"),
            std::string::npos);

  // k larger than the published depth recomputes from the sketch.
  const std::string deep = get_path(server.port(), "/topk?k=4");
  EXPECT_NE(deep.find("\"k\": 4"), std::string::npos);

  const std::string frequency =
      get_path(server.port(), "/frequency?key=0xbeef");
  EXPECT_NE(frequency.find("\"key\": \"0000beef\""), std::string::npos);
  EXPECT_NE(frequency.find("\"estimate\": "), std::string::npos);

  const std::string pairs = get_path(server.port(), "/distinct_pairs");
  EXPECT_NE(pairs.find("\"distinct_pairs\": 777"), std::string::npos);

  const std::string alerts = get_path(server.port(), "/alerts");
  EXPECT_NE(alerts.find("\"active_alarms\": 1"), std::string::npos);
  EXPECT_NE(alerts.find("\"kind\":\"raised\""), std::string::npos);

  const std::string sites = get_path(server.port(), "/sites");
  EXPECT_NE(sites.find("\"site_id\": 1"), std::string::npos);

  const std::string generations = get_path(server.port(), "/generations");
  EXPECT_NE(generations.find("\"generation\": 1"), std::string::npos);
  EXPECT_NE(generations.find("\"generation\": 2"), std::string::npos);

  const std::string healthz = get_path(server.port(), "/healthz");
  EXPECT_NE(healthz.find("\"status\": \"ok\""), std::string::npos);
  EXPECT_NE(healthz.find("\"loaded_generations\": 2"), std::string::npos);

  const std::string metrics = get_path(server.port(), "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.1 200"), std::string::npos);

  // Time travel: exact generation, epoch bound, and both error shapes.
  const std::string old_gen = get_path(server.port(), "/topk?generation=1");
  EXPECT_NE(old_gen.find("\"generation\": 1"), std::string::npos);
  const std::string by_epoch = get_path(server.port(), "/alerts?epoch<=41");
  EXPECT_NE(by_epoch.find("\"generation\": 1"), std::string::npos);
  const std::string pruned = get_path(server.port(), "/topk?generation=9");
  EXPECT_NE(pruned.find("HTTP/1.1 404"), std::string::npos);
  EXPECT_NE(pruned.find("not retained"), std::string::npos);
  const std::string too_early = get_path(server.port(), "/topk?epoch<=1");
  EXPECT_NE(too_early.find("HTTP/1.1 404"), std::string::npos);
  const std::string bad_k = get_path(server.port(), "/topk?k=banana");
  EXPECT_NE(bad_k.find("HTTP/1.1 400"), std::string::npos);
  const std::string no_key = get_path(server.port(), "/frequency");
  EXPECT_NE(no_key.find("HTTP/1.1 400"), std::string::npos);

  // Identical requests serve identical bytes (cache contract over HTTP).
  EXPECT_EQ(body_of(get_path(server.port(), "/topk?k=2")),
            body_of(get_path(server.port(), "/topk?k=2")));

  server.stop();
}

TEST(QueryServerHttp, EmptyDirectoryAnswers404UntilFirstPublish) {
  const std::string dir = scratch_dir("server_empty");
  QueryServerConfig config;
  config.publish_dir = dir;
  config.watch_every_ms = 20;
  QueryServer server(std::move(config));
  server.start();

  const std::string early = get_path(server.port(), "/topk");
  EXPECT_NE(early.find("HTTP/1.1 404"), std::string::npos);
  EXPECT_NE(early.find("no snapshot published yet"), std::string::npos);
  // /healthz stays 200 — the process is alive, just empty.
  EXPECT_NE(get_path(server.port(), "/healthz").find("HTTP/1.1 200"),
            std::string::npos);

  SnapshotStore store(dir);
  store.write(sample_snapshot(1));
  server.refresh();
  EXPECT_NE(get_path(server.port(), "/topk").find("HTTP/1.1 200"),
            std::string::npos);
  server.stop();
}

// --- concurrency (TSan coverage) --------------------------------------------

TEST(QueryConcurrency, ReadersRefreshAndPublisherRaceCleanly) {
  obs::set_enabled(true);
  const std::string dir = scratch_dir("concurrency");
  const auto provider = [](std::size_t) {
    service::QueryPublishState state;
    state.checkpoint.sketch = DistinctCountSketch(small_params());
    state.epoch_watermark = 1;
    return state;
  };
  SnapshotPublisherConfig publish_config;
  publish_config.publish_dir = dir;
  publish_config.retain = 4;
  SnapshotPublisher publisher(publish_config, provider);
  publisher.publish_now();

  QueryEngine engine(QueryEngineConfig{dir, 32});
  engine.refresh();

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (int i = 0; i < 30; ++i) publisher.publish_now();
    stop.store(true);
  });
  std::thread refresher([&] {
    while (!stop.load()) engine.refresh();
    engine.refresh();
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r)
    readers.emplace_back([&, r] {
      while (!stop.load()) {
        const auto loaded = engine.newest();
        if (!loaded) continue;
        const std::string body = engine.cached(
            loaded->snapshot.generation, "/topk?r=" + std::to_string(r),
            [&loaded] {
              return std::to_string(loaded->snapshot.generation) + ":" +
                     std::to_string(loaded->tracking.top_k(3).entries.size());
            });
        EXPECT_FALSE(body.empty());
      }
    });
  writer.join();
  refresher.join();
  for (auto& reader : readers) reader.join();

  ASSERT_TRUE(engine.newest());
  EXPECT_EQ(engine.newest()->snapshot.generation, 31u);
}

// --- shared HTTP server error-path contract ---------------------------------

std::size_t parsed_content_length(const std::string& response) {
  const std::string text = header_value(response, "Content-Length");
  return text.empty() ? static_cast<std::size_t>(-1) : std::stoul(text);
}

TEST(WireHttpErrors, ErrorResponsesCarryExactContentLengthAndClose) {
  obs::set_enabled(true);
  obs::HttpServer server;
  server.route("/ok", [] {
    obs::HttpResponse response;
    response.body = "fine\n";
    return response;
  });
  server.start();

  // 404: unknown route.
  const std::string missing = get_path(server.port(), "/nope");
  EXPECT_NE(missing.find("HTTP/1.1 404"), std::string::npos);
  EXPECT_EQ(header_value(missing, "Connection"), "close");
  EXPECT_EQ(parsed_content_length(missing), body_of(missing).size());
  EXPECT_FALSE(body_of(missing).empty());

  // 400: malformed request line.
  const std::string garbage = http_get(server.port(), "nonsense\r\n\r\n");
  EXPECT_NE(garbage.find("HTTP/1.1 400"), std::string::npos);
  EXPECT_EQ(header_value(garbage, "Connection"), "close");
  EXPECT_EQ(parsed_content_length(garbage), body_of(garbage).size());

  // 200 for reference: the same invariants hold on the happy path.
  const std::string ok = get_path(server.port(), "/ok");
  EXPECT_EQ(parsed_content_length(ok), body_of(ok).size());
  EXPECT_EQ(header_value(ok, "Connection"), "close");

  server.stop();
}

TEST(WireHttpErrors, NonGetIs405WithAllowHeader) {
  obs::HttpServer server;
  server.route("/ok", [] { return obs::HttpResponse{}; });
  server.start();
  for (const char* method : {"POST", "PUT", "DELETE", "HEAD"}) {
    const std::string response = http_get(
        server.port(), std::string(method) + " /ok HTTP/1.1\r\nHost: x\r\n\r\n");
    EXPECT_NE(response.find("HTTP/1.1 405"), std::string::npos) << method;
    EXPECT_EQ(header_value(response, "Allow"), "GET") << method;
    EXPECT_EQ(parsed_content_length(response), body_of(response).size())
        << method;
  }
  server.stop();
}

TEST(WireHttpParsing, UrlDecodeAndQueryParams) {
  EXPECT_EQ(obs::url_decode("a%20b+c"), "a b c");
  EXPECT_EQ(obs::url_decode("%2Fpath%3Fx"), "/path?x");
  EXPECT_EQ(obs::url_decode("100%"), "100%");    // malformed passes through
  EXPECT_EQ(obs::url_decode("%zz"), "%zz");

  const auto params = obs::parse_query_params("k=5&key=0xbeef&epoch%3C=7&flag");
  ASSERT_EQ(params.size(), 4u);
  EXPECT_EQ(params[0].first, "k");
  EXPECT_EQ(params[0].second, "5");
  EXPECT_EQ(params[1].first, "key");
  EXPECT_EQ(params[1].second, "0xbeef");
  // %3C decodes to '<': the ?epoch<=E time-travel form, URL-encoded.
  EXPECT_EQ(params[2].first, "epoch<");
  EXPECT_EQ(params[2].second, "7");
  EXPECT_EQ(params[3].first, "flag");
  EXPECT_EQ(params[3].second, "");

  obs::HttpRequest request;
  request.params = params;
  ASSERT_NE(request.param("epoch<"), nullptr);
  EXPECT_EQ(*request.param("epoch<"), "7");
  EXPECT_EQ(request.param("absent"), nullptr);
}

}  // namespace
}  // namespace dcs::query
