// Statistical properties of the estimator: unbiasedness of the frequency
// estimates across hash seeds, error shrinking with s, and the distinct-pair
// estimator's concentration. These pin down the analysis-level claims of
// §4 (Lemma 4.3) empirically.
#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.hpp"
#include "sketch/distinct_count_sketch.hpp"
#include "stream/generator.hpp"

namespace dcs {
namespace {

/// One fixed workload, many sketch seeds; returns estimates of `dest`'s
/// frequency across seeds.
RunningStats frequency_estimates(const ZipfWorkload& workload, Addr dest,
                                 std::uint32_t s, int seeds) {
  RunningStats stats;
  for (int seed = 0; seed < seeds; ++seed) {
    DcsParams params;
    params.buckets_per_table = s;
    params.seed = static_cast<std::uint64_t>(seed) * 7919 + 1;
    DistinctCountSketch sketch(params);
    for (const FlowUpdate& u : workload.updates())
      sketch.update(u.dest, u.source, u.delta);
    stats.add(static_cast<double>(sketch.estimate_frequency(dest)));
  }
  return stats;
}

ZipfWorkload standard_workload() {
  ZipfWorkloadConfig config;
  config.u_pairs = 50'000;
  config.num_destinations = 1000;
  config.skew = 1.5;
  config.seed = 77;
  return ZipfWorkload(config);
}

TEST(Statistics, TopFrequencyEstimateIsNearlyUnbiased) {
  const ZipfWorkload workload = standard_workload();
  const DestFrequency top = workload.true_top_k(1)[0];
  const RunningStats stats =
      frequency_estimates(workload, top.dest, 128, 25);
  // Mean over 25 independent hash seeds within 15% of truth. The residual
  // ~5-10% downward bias is the documented recovery loss at the loaded
  // stopping level; a factor-2 scaling bug would fail this wildly. The
  // collision-corrected estimator (correction_test.cpp) is held to 5%.
  EXPECT_NEAR(stats.mean(), static_cast<double>(top.frequency),
              0.15 * static_cast<double>(top.frequency));
  // The bias, if any, must be downward (losses, never double counting).
  EXPECT_LT(stats.mean(), 1.02 * static_cast<double>(top.frequency));
}

TEST(Statistics, ErrorShrinksWithS) {
  const ZipfWorkload workload = standard_workload();
  const DestFrequency top = workload.true_top_k(1)[0];
  const RunningStats narrow = frequency_estimates(workload, top.dest, 64, 15);
  const RunningStats wide = frequency_estimates(workload, top.dest, 512, 15);
  const double truth = static_cast<double>(top.frequency);
  const double narrow_rel = narrow.stddev() / truth;
  const double wide_rel = wide.stddev() / truth;
  // 8x the buckets should cut the sampling error roughly by sqrt(8) ~ 2.8;
  // accept any clear improvement.
  EXPECT_LT(wide_rel, 0.8 * narrow_rel)
      << "narrow rel-sd " << narrow_rel << " wide rel-sd " << wide_rel;
}

TEST(Statistics, DistinctPairEstimateConcentrates) {
  const ZipfWorkload workload = standard_workload();
  RunningStats stats;
  for (int seed = 0; seed < 20; ++seed) {
    DcsParams params;
    params.seed = static_cast<std::uint64_t>(seed) + 1000;
    DistinctCountSketch sketch(params);
    for (const FlowUpdate& u : workload.updates())
      sketch.update(u.dest, u.source, u.delta);
    stats.add(static_cast<double>(sketch.estimate_distinct_pairs()));
  }
  EXPECT_NEAR(stats.mean(), 50'000.0, 0.15 * 50'000.0);
  // No single run should be off by more than ~2.5x.
  EXPECT_GT(stats.min(), 50'000.0 / 2.5);
  EXPECT_LT(stats.max(), 50'000.0 * 2.5);
}

TEST(Statistics, EstimatesAreScaledSampleCounts) {
  // Structural invariant behind Lemma 4.3: every estimate is a multiple of
  // 2^inference_level.
  DcsParams params;
  params.seed = 5;
  DistinctCountSketch sketch(params);
  const ZipfWorkload workload = standard_workload();
  for (const FlowUpdate& u : workload.updates())
    sketch.update(u.dest, u.source, u.delta);
  const TopKResult result = sketch.top_k(20);
  ASSERT_GT(result.inference_level, 0);
  const std::uint64_t granule = 1ULL << result.inference_level;
  for (const TopKEntry& entry : result.entries)
    EXPECT_EQ(entry.estimate % granule, 0u);
}

}  // namespace
}  // namespace dcs
