// Corruption fuzz tests for the durability layer: every way a checkpoint or
// journal file can rot on disk — bit flips, truncation, zero length, torn
// appends — must be *detected* (rejected or cut off at the last valid
// record), never crash the loader, and never partially apply. A collector
// facing a corrupt newest generation must fall back to the previous one.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "common/serialize.hpp"
#include "service/checkpoint.hpp"
#include "service/collector.hpp"
#include "service/epoch_journal.hpp"
#include "sketch/distinct_count_sketch.hpp"

namespace dcs::service {
namespace {

std::string test_dir(const char* leaf) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  std::filesystem::path dir = std::filesystem::path(::testing::TempDir()) /
                              (std::string(info->test_suite_name()) + "." +
                               info->name() + "." + leaf);
  std::filesystem::remove_all(dir);
  return dir.string();
}

DcsParams tiny_params() {
  DcsParams params;
  params.num_tables = 2;
  params.buckets_per_table = 16;
  params.seed = 11;
  return params;
}

CheckpointState sample_state() {
  CheckpointState state;
  state.generation = 1;
  state.sketch = DistinctCountSketch(tiny_params());
  for (std::uint64_t i = 0; i < 40; ++i)
    state.sketch.update(static_cast<Addr>(i % 5), static_cast<Addr>(i), +1);
  state.sites = {{1, 4, 4, 2000, 0, 1}, {2, 3, 3, 1500, 1, 0}};
  state.deltas_merged = 7;
  state.duplicate_deltas = 1;
  state.dropped_epochs = 1;
  state.byes = 1;
  return state;
}

/// Same shape but with an *empty* sketch: a few hundred bytes instead of
/// ~100 KiB (each allocated sketch level is a dense signature array), so
/// exhaustive per-byte fuzzing stays fast. The populated container is
/// fuzzed at a stride.
CheckpointState compact_state() {
  CheckpointState state = sample_state();
  state.sketch = DistinctCountSketch(tiny_params());
  state.detector_blob = "detector state stand-in bytes";
  return state;
}

std::string sketch_blob(std::uint64_t salt) {
  DistinctCountSketch sketch(tiny_params());
  for (std::uint64_t i = 0; i < 30; ++i)
    sketch.update(static_cast<Addr>(salt * 7 + i % 4), static_cast<Addr>(i),
                  +1);
  std::ostringstream out(std::ios::binary);
  BinaryWriter writer(out);
  sketch.serialize(writer);
  return std::move(out).str();
}

void write_raw(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::string read_raw(const std::string& path) {
  const auto bytes = read_file_bytes(path);
  EXPECT_TRUE(bytes.has_value()) << path;
  return bytes.value_or(std::string());
}

// --- checkpoint container ----------------------------------------------------

/// Flip one bit in every byte of a compact checkpoint — header, watermarks,
/// detector region, CRC footer alike — and at a stride through a populated
/// one (outer CRC coverage is uniform; the stride just proves the big
/// sketch region is inside it): decode must throw SerializeError every
/// single time (CRC-32 catches all 1-bit errors).
TEST(CheckpointCorruption, EveryBitFlipIsRejected) {
  const std::string compact = CheckpointStore::encode(compact_state());
  ASSERT_NO_THROW(CheckpointStore::decode(compact));
  for (std::size_t i = 0; i < compact.size(); ++i) {
    std::string bad = compact;
    bad[i] ^= 0x10;
    EXPECT_THROW(CheckpointStore::decode(bad), SerializeError)
        << "flip at byte " << i << " of " << compact.size() << " not detected";
  }

  const std::string populated = CheckpointStore::encode(sample_state());
  ASSERT_NO_THROW(CheckpointStore::decode(populated));
  for (std::size_t i = 0; i < populated.size(); i += 499) {
    std::string bad = populated;
    bad[i] ^= 0x10;
    EXPECT_THROW(CheckpointStore::decode(bad), SerializeError)
        << "flip at byte " << i << " of " << populated.size()
        << " not detected";
  }
}

/// Every truncation point of the compact container — from zero-length to
/// one-byte-short — and strided truncations of the populated one must be
/// rejected, not read past the end or partially applied.
TEST(CheckpointCorruption, EveryTruncationIsRejected) {
  const std::string compact = CheckpointStore::encode(compact_state());
  for (std::size_t len = 0; len < compact.size(); ++len)
    EXPECT_THROW(CheckpointStore::decode(compact.substr(0, len)),
                 SerializeError)
        << "truncation to " << len << " bytes not detected";

  const std::string populated = CheckpointStore::encode(sample_state());
  for (std::size_t len = 0; len < populated.size(); len += 499)
    EXPECT_THROW(CheckpointStore::decode(populated.substr(0, len)),
                 SerializeError)
        << "truncation to " << len << " bytes not detected";
  for (std::size_t cut = 1; cut <= 8; ++cut)
    EXPECT_THROW(
        CheckpointStore::decode(populated.substr(0, populated.size() - cut)),
        SerializeError)
        << "truncation by " << cut << " trailing bytes not detected";

  // Trailing garbage after a valid container is corruption too.
  EXPECT_THROW(CheckpointStore::decode(populated + "x"), SerializeError);
}

/// load_latest walks back over corrupt generations and recovers the newest
/// one that still verifies.
TEST(CheckpointCorruption, LoadLatestFallsBackAGeneration) {
  const CheckpointStore store(test_dir("fallback"));
  CheckpointState gen1 = sample_state();
  gen1.generation = 1;
  gen1.deltas_merged = 5;
  store.write(gen1);
  CheckpointState gen2 = sample_state();
  gen2.generation = 2;
  gen2.deltas_merged = 9;
  store.write(gen2);

  // Pristine: newest wins.
  std::uint64_t corrupt = 0;
  auto loaded = store.load_latest(&corrupt);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->generation, 2u);
  EXPECT_EQ(corrupt, 0u);

  // Flip a byte mid-file in generation 2: fall back to generation 1.
  const std::string gen2_path = store.checkpoint_path(2);
  std::string bytes = read_raw(gen2_path);
  bytes[bytes.size() / 2] ^= 0x01;
  write_raw(gen2_path, bytes);
  corrupt = 0;
  loaded = store.load_latest(&corrupt);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->generation, 1u);
  EXPECT_EQ(loaded->deltas_merged, 5u);
  EXPECT_EQ(corrupt, 1u);

  // Zero-length newest (crash between open and write): same fallback.
  write_raw(gen2_path, "");
  corrupt = 0;
  loaded = store.load_latest(&corrupt);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->generation, 1u);
  EXPECT_EQ(corrupt, 1u);

  // Both generations corrupt: no state, both skips counted, no throw.
  write_raw(store.checkpoint_path(1), "not a checkpoint");
  corrupt = 0;
  loaded = store.load_latest(&corrupt);
  EXPECT_FALSE(loaded.has_value());
  EXPECT_EQ(corrupt, 2u);
}

/// A checkpoint renamed to claim a different generation than its payload
/// records is rejected (defends against file-shuffling restores).
TEST(CheckpointCorruption, GenerationMismatchWithFilenameIsSkipped) {
  const CheckpointStore store(test_dir("rename"));
  CheckpointState state = sample_state();
  state.generation = 1;
  store.write(state);
  std::filesystem::rename(store.checkpoint_path(1), store.checkpoint_path(4));
  std::uint64_t corrupt = 0;
  EXPECT_FALSE(store.load_latest(&corrupt).has_value());
  EXPECT_EQ(corrupt, 1u);
}

// --- retention ---------------------------------------------------------------

/// Configurable retention depth: prune_retained(newest) keeps exactly the
/// newest `retain` generation numbers, with the subtraction guarded at the
/// low boundary (never underflows, never deletes what it should keep).
TEST(CheckpointRetention, PruneKeepsExactlyRetainNewestGenerations) {
  const CheckpointStore store(test_dir("retain3"), /*retain=*/3);
  EXPECT_EQ(store.retain(), 3u);
  for (std::uint64_t generation = 1; generation <= 6; ++generation) {
    CheckpointState state = sample_state();
    state.generation = generation;
    store.write(state);
    store.prune_retained(generation);
    // Never fewer than min(generation, retain) generations on disk.
    const auto kept = store.checkpoint_generations();
    EXPECT_EQ(kept.size(), std::min<std::uint64_t>(generation, 3u))
        << "generation=" << generation;
    EXPECT_EQ(kept.back(), generation);
  }
  EXPECT_EQ(store.checkpoint_generations(), (std::vector<std::uint64_t>{4, 5, 6}));
}

TEST(CheckpointRetention, BoundaryNewestAtOrBelowRetainPrunesNothing) {
  const CheckpointStore store(test_dir("boundary"), /*retain=*/5);
  for (std::uint64_t generation = 1; generation <= 5; ++generation) {
    CheckpointState state = sample_state();
    state.generation = generation;
    store.write(state);
  }
  store.prune_retained(3);  // newest < retain: nothing to cut
  EXPECT_EQ(store.checkpoint_generations().size(), 5u);
  store.prune_retained(5);  // newest == retain: keep 1..5 exactly
  EXPECT_EQ(store.checkpoint_generations(), (std::vector<std::uint64_t>{1, 2, 3, 4, 5}));
  store.prune_retained(6);  // one past: generation 1 goes
  EXPECT_EQ(store.checkpoint_generations(), (std::vector<std::uint64_t>{2, 3, 4, 5}));
}

TEST(CheckpointRetention, RetainOneKeepsOnlyNewestAndZeroIsRejected) {
  const CheckpointStore store(test_dir("retain1"), /*retain=*/1);
  for (std::uint64_t generation = 1; generation <= 3; ++generation) {
    CheckpointState state = sample_state();
    state.generation = generation;
    store.write(state);
    store.prune_retained(generation);
  }
  EXPECT_EQ(store.checkpoint_generations(), (std::vector<std::uint64_t>{3}));

  EXPECT_THROW(CheckpointStore(test_dir("retain0"), /*retain=*/0),
               std::invalid_argument);
}

/// The collector plumbs checkpoint_retain through to its store: a deeper
/// retention leaves more history for rollback while the default (2) keeps
/// the original disk footprint.
TEST(CheckpointRetention, CollectorHonorsConfiguredRetention) {
  CollectorConfig config;
  config.params = tiny_params();
  config.state_dir = test_dir("collector_retain");
  config.checkpoint_every = 1;  // checkpoint on every merge
  config.checkpoint_retain = 4;
  config.run_detection = false;
  config.io_timeout_ms = 50;
  Collector collector(config);

  // Drive checkpoints directly (no sockets needed): checkpoint_now()
  // advances the generation each call.
  for (int i = 0; i < 6; ++i) EXPECT_TRUE(collector.checkpoint_now());
  const CheckpointStore store(config.state_dir);
  const auto kept = store.checkpoint_generations();
  EXPECT_EQ(kept.size(), 4u);
  EXPECT_EQ(kept.back(), collector.checkpoint_generation());
}

// --- epoch journal -----------------------------------------------------------

/// Journal framing is blob-agnostic (replay hands the bytes back verbatim;
/// decoding them is the collector's job, covered by the recovery property
/// tests), so short stand-in blobs keep the exhaustive per-byte fuzz loops
/// below fast — a real ~33 KiB sketch blob per record would make them
/// quadratic in file size.
std::string build_journal(const std::string& path, int records) {
  auto journal = EpochJournal::open(path, /*fsync_each=*/false);
  for (int i = 1; i <= records; ++i)
    journal.append({5, static_cast<std::uint64_t>(i), 30,
                    "epoch-" + std::to_string(i) + "-delta-bytes"});
  journal.close();
  return read_raw(path);
}

/// Bit flips anywhere in the journal cut replay off at the previous record —
/// replay never throws and never returns a record whose bytes were touched.
TEST(CheckpointCorruption, JournalBitFlipsTruncateAtLastValidRecord) {
  const std::string dir = test_dir("journal");
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/journal-00000001.dcsj";
  const std::string good = build_journal(path, 3);

  const auto pristine = EpochJournal::replay(path);
  ASSERT_EQ(pristine.records.size(), 3u);
  ASSERT_FALSE(pristine.truncated_tail);

  // Record boundaries: [0, b1) is record 1, [b1, b2) record 2, etc.
  std::vector<std::size_t> boundaries;
  {
    std::size_t offset = 0;
    for (int i = 0; i < 3; ++i) {
      std::uint32_t payload_len = 0;
      std::memcpy(&payload_len, good.data() + offset + 4, 4);
      offset += 8 + payload_len + 4;
      boundaries.push_back(offset);
    }
    ASSERT_EQ(offset, good.size());
  }

  for (std::size_t i = 0; i < good.size(); ++i) {
    std::string bad = good;
    bad[i] ^= 0x40;
    write_raw(path, bad);
    const auto replayed = EpochJournal::replay(path);
    // How many leading records are untouched by a flip at byte i?
    std::size_t intact = 0;
    while (intact < boundaries.size() && i >= boundaries[intact]) ++intact;
    EXPECT_EQ(replayed.records.size(), intact) << "flip at byte " << i;
    EXPECT_TRUE(replayed.truncated_tail) << "flip at byte " << i;
    for (std::size_t r = 0; r < replayed.records.size(); ++r)
      EXPECT_EQ(replayed.records[r].epoch, pristine.records[r].epoch);
  }
}

/// Truncation at every byte — the torn-append shape a crash leaves — yields
/// exactly the records whose bytes are complete, flagging the torn tail.
TEST(CheckpointCorruption, JournalTruncationKeepsValidPrefix) {
  const std::string dir = test_dir("torn");
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/journal-00000001.dcsj";
  const std::string good = build_journal(path, 3);

  std::vector<std::size_t> boundaries;
  {
    std::size_t offset = 0;
    for (int i = 0; i < 3; ++i) {
      std::uint32_t payload_len = 0;
      std::memcpy(&payload_len, good.data() + offset + 4, 4);
      offset += 8 + payload_len + 4;
      boundaries.push_back(offset);
    }
  }

  for (std::size_t len = 0; len <= good.size(); ++len) {
    write_raw(path, good.substr(0, len));
    const auto replayed = EpochJournal::replay(path);
    std::size_t complete = 0;
    while (complete < boundaries.size() && len >= boundaries[complete])
      ++complete;
    const std::size_t consumed = complete == 0 ? 0 : boundaries[complete - 1];
    EXPECT_EQ(replayed.records.size(), complete) << "truncated to " << len;
    EXPECT_EQ(replayed.valid_bytes, consumed) << "truncated to " << len;
    EXPECT_EQ(replayed.truncated_tail, len > consumed)
        << "truncated to " << len;
  }

  // Pure garbage from byte 0: zero records, flagged, no throw.
  write_raw(path, "garbage garbage garbage garbage!");
  const auto garbage = EpochJournal::replay(path);
  EXPECT_TRUE(garbage.records.empty());
  EXPECT_TRUE(garbage.truncated_tail);
}

// --- collector over a rotten state directory ---------------------------------

/// End to end: the newest checkpoint generation is corrupt on disk, but the
/// previous generation plus its journal still reconstruct the full state —
/// the collector starts, recovers, and numbers new checkpoints above the
/// corrupt file so it is never resurrected.
TEST(CheckpointCorruption, CollectorFallsBackAndResumesNumbering) {
  CollectorConfig config;
  config.params = tiny_params();
  config.run_detection = false;
  config.state_dir = test_dir("state");
  config.checkpoint_every = 1000;

  DistinctCountSketch epoch1(tiny_params());
  for (std::uint64_t i = 0; i < 25; ++i)
    epoch1.update(static_cast<Addr>(i % 3), static_cast<Addr>(i), +1);

  {
    const CheckpointStore store(config.state_dir);
    CheckpointState gen1;
    gen1.generation = 1;
    gen1.sketch = epoch1;
    gen1.sites = {{5, 1, 1, 25, 0, 0}};
    gen1.deltas_merged = 1;
    store.write(gen1);
    // Journal for generation 1: a second epoch not covered by any
    // checkpoint.
    auto journal = EpochJournal::open(store.journal_path(1));
    journal.append({5, 2, 30, sketch_blob(2)});
    journal.close();
    // Generation 2 exists but is corrupt (crash mid-write + lost rename
    // ordering, or disk rot).
    CheckpointState gen2 = gen1;
    gen2.generation = 2;
    gen2.deltas_merged = 2;
    store.write(gen2);
    std::string bytes = read_raw(store.checkpoint_path(2));
    bytes[bytes.size() / 3] ^= 0x08;
    write_raw(store.checkpoint_path(2), bytes);
  }

  Collector collector(config);
  const auto stats = collector.stats();
  EXPECT_EQ(stats.recoveries, 1u);
  EXPECT_EQ(stats.corrupt_generations_skipped, 1u);
  EXPECT_EQ(stats.replayed_epochs, 1u);  // journal epoch 2
  EXPECT_EQ(stats.deltas_merged, 2u);

  DistinctCountSketch expected = epoch1;
  {
    DistinctCountSketch epoch2(tiny_params());
    for (std::uint64_t i = 0; i < 30; ++i)
      epoch2.update(static_cast<Addr>(2 * 7 + i % 4), static_cast<Addr>(i),
                    +1);
    expected.merge(epoch2);
  }
  EXPECT_TRUE(collector.merged_sketch() == expected);
  // New checkpoints must be numbered above the corrupt generation 2.
  EXPECT_GE(collector.checkpoint_generation(), 3u);

  const auto sites = collector.site_stats();
  ASSERT_EQ(sites.size(), 1u);
  EXPECT_EQ(sites[0].last_epoch, 2u);
}

}  // namespace
}  // namespace dcs::service
