# End-to-end smoke for the snapshot-serving query tier: one dcs_agent
# shipping ~98 epochs, a dcs_collector publishing query snapshots every
# 150 ms, and a dcs_query_server watching the publish directory — all
# started concurrently — while query_probe.cmake (the fourth member of the
# pipeline) curls every route mid-ingest, exercises time travel and the
# cache contract, then releases the server via its --stop-file.
#
# A second phase restarts the query server over the now-quiescent publish
# directory and asserts the served top-1 equals the collector's own final
# stdout answer — the bit-for-bit guarantee, end to end through real
# processes, real files, and real HTTP.
file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})
set(port_file ${WORK_DIR}/collector.port)
set(query_port_file ${WORK_DIR}/query.port)
set(publish_dir ${WORK_DIR}/publish)
set(stop_file ${WORK_DIR}/probe.done)

# The collector is listed last: execute_process runs its COMMANDs as one
# concurrent pipeline and OUTPUT_VARIABLE captures the last one's stdout.
execute_process(
  COMMAND ${DCS_AGENT} --site 9 --port-file ${port_file}
          --u 200000 --d 50 --epoch-updates 2048
  COMMAND ${DCS_QUERY_SERVER} --publish-dir ${publish_dir} --port 0
          --port-file ${query_port_file} --watch-every-ms 100
          --stop-file ${stop_file} --run-ms 60000
          --metrics-out ${WORK_DIR}/query_metrics.prom
  COMMAND ${CMAKE_COMMAND} -DPORT_FILE=${query_port_file}
          -DOUT_DIR=${WORK_DIR} -DSTOP_FILE=${stop_file}
          -P ${CMAKE_CURRENT_LIST_DIR}/query_probe.cmake
  COMMAND ${DCS_COLLECTOR} --port-file ${port_file} --sites 1
          --timeout-ms 60000 --publish-dir ${publish_dir}
          --publish-every-ms 150 --publish-retain 1000 --publish-k 5
  WORKING_DIRECTORY ${WORK_DIR}
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
  RESULTS_VARIABLE statuses
  TIMEOUT 90)

foreach(status ${statuses})
  if(NOT status EQUAL 0)
    message(FATAL_ERROR "query_smoke: a process failed (${statuses}):\n"
      "${out}\n${err}")
  endif()
endforeach()

# The collector prints its final merged top-k; capture rank 1 for phase 2.
# (--publish-retain is deep enough that nothing was pruned, so the final
# published generation is still on disk for the restarted server.)
if(NOT out MATCHES " 1  dest=([0-9a-f]+)  frequency~([0-9]+)")
  message(FATAL_ERROR "query_smoke: collector printed no top-k:\n${out}\n${err}")
endif()
set(expect_group ${CMAKE_MATCH_1})
set(expect_estimate ${CMAKE_MATCH_2})

# The query server's exit snapshot must show real serving activity.
file(READ ${WORK_DIR}/query_metrics.prom query_prom)
foreach(needle
    "dcs_query_reloads_total [1-9]"
    "dcs_query_requests_total [1-9]"
    "dcs_query_reload_errors_total 0")
  if(NOT query_prom MATCHES "${needle}")
    message(FATAL_ERROR "query_smoke: query_metrics.prom missing "
      "'${needle}':\n${query_prom}")
  endif()
endforeach()

message(STATUS "query_smoke: live sweep served mid-ingest "
  "(final top-1 dest=${expect_group} freq=${expect_estimate})")

# --- Phase 2: restart over the retained directory, assert the end state ----
file(REMOVE ${stop_file})
set(query_port_file2 ${WORK_DIR}/query2.port)
execute_process(
  COMMAND ${DCS_QUERY_SERVER} --publish-dir ${publish_dir} --port 0
          --port-file ${query_port_file2} --watch-every-ms 100
          --stop-file ${stop_file} --run-ms 60000
  COMMAND ${CMAKE_COMMAND} -DPORT_FILE=${query_port_file2}
          -DOUT_DIR=${WORK_DIR} -DSTOP_FILE=${stop_file} -DMODE=final
          -DEXPECT_GROUP=${expect_group} -DEXPECT_ESTIMATE=${expect_estimate}
          -P ${CMAKE_CURRENT_LIST_DIR}/query_probe.cmake
  WORKING_DIRECTORY ${WORK_DIR}
  OUTPUT_VARIABLE final_out
  ERROR_VARIABLE final_err
  RESULTS_VARIABLE final_statuses
  TIMEOUT 90)

foreach(status ${final_statuses})
  if(NOT status EQUAL 0)
    message(FATAL_ERROR "query_smoke: final phase failed (${final_statuses}):\n"
      "${final_out}\n${final_err}")
  endif()
endforeach()

message(STATUS "query_smoke: restarted server serves the collector's final "
  "answer bit-for-bit")
