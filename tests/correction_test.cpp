// Tests for collision-corrected estimation (linear-counting rescale).
#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.hpp"
#include "sketch/distinct_count_sketch.hpp"
#include "sketch/tracking_dcs.hpp"
#include "stream/generator.hpp"

namespace dcs {
namespace {

TEST(LinearCount, ZeroOccupancyIsZero) {
  EXPECT_EQ(linear_count_estimate(0, 128), 0.0);
}

TEST(LinearCount, SparseOccupancyIsNearOccupied) {
  // With few keys, collisions are rare: n̂ ≈ o.
  EXPECT_NEAR(linear_count_estimate(5, 1024), 5.0, 0.05);
}

TEST(LinearCount, CorrectsForCollisions) {
  // Throwing n keys into s buckets occupies s(1-(1-1/s)^n) in expectation;
  // inverting that occupancy must return ~n.
  const std::uint32_t s = 128;
  for (const int n : {32, 64, 128, 256}) {
    const double expected_occupied =
        s * (1.0 - std::pow(1.0 - 1.0 / s, n));
    const double estimate = linear_count_estimate(
        static_cast<std::uint64_t>(std::llround(expected_occupied)), s);
    EXPECT_NEAR(estimate, n, 0.05 * n + 1.0) << "n=" << n;
  }
}

TEST(LinearCount, SaturatedTableIsFiniteAndLarge) {
  const double estimate = linear_count_estimate(128, 128);
  EXPECT_TRUE(std::isfinite(estimate));
  EXPECT_GT(estimate, 500.0);
}

DcsParams corrected_params(std::uint64_t seed) {
  DcsParams params;
  params.collision_correction = true;
  params.seed = seed;
  return params;
}

TEST(Correction, RemovesRecoveryBias) {
  // Without correction the default stopping rule under-estimates ~5-10%
  // (recovery losses at the loaded boundary level). With correction, the
  // across-seed mean must land within 5% of the truth.
  ZipfWorkloadConfig config;
  config.u_pairs = 50'000;
  config.num_destinations = 1000;
  config.skew = 1.5;
  config.seed = 77;
  const ZipfWorkload workload(config);
  const DestFrequency top = workload.true_top_k(1)[0];

  RunningStats corrected, raw;
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    DcsParams params = corrected_params(seed * 131 + 1);
    DistinctCountSketch with(params);
    params.collision_correction = false;
    DistinctCountSketch without(params);
    for (const FlowUpdate& u : workload.updates()) {
      with.update(u.dest, u.source, u.delta);
      without.update(u.dest, u.source, u.delta);
    }
    corrected.add(static_cast<double>(with.estimate_frequency(top.dest)));
    raw.add(static_cast<double>(without.estimate_frequency(top.dest)));
  }
  const double truth = static_cast<double>(top.frequency);
  EXPECT_NEAR(corrected.mean(), truth, 0.05 * truth);
  // And the correction must actually move the estimate up (the bias is
  // downward).
  EXPECT_GT(corrected.mean(), raw.mean());
}

TEST(Correction, DistinctPairsWithinFivePercentOnAverage) {
  ZipfWorkloadConfig config;
  config.u_pairs = 50'000;
  config.num_destinations = 1000;
  config.skew = 1.5;
  config.seed = 77;
  const ZipfWorkload workload(config);
  RunningStats stats;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    DistinctCountSketch sketch(corrected_params(seed + 500));
    for (const FlowUpdate& u : workload.updates())
      sketch.update(u.dest, u.source, u.delta);
    stats.add(static_cast<double>(sketch.estimate_distinct_pairs()));
  }
  EXPECT_NEAR(stats.mean(), 50'000.0, 0.05 * 50'000.0);
}

TEST(Correction, BasicAndTrackingStillAgreeExactly) {
  const DcsParams params = corrected_params(42);
  DistinctCountSketch basic(params);
  TrackingDcs tracking(params);
  ZipfWorkloadConfig config;
  config.u_pairs = 30'000;
  config.num_destinations = 500;
  config.skew = 1.5;
  config.churn = 1;
  const ZipfWorkload workload(config);
  for (const FlowUpdate& u : workload.updates()) {
    basic.update(u.dest, u.source, u.delta);
    tracking.update(u.dest, u.source, u.delta);
  }
  EXPECT_EQ(basic.top_k(10).entries, tracking.top_k(10).entries);
  EXPECT_EQ(basic.estimate_distinct_pairs(), tracking.estimate_distinct_pairs());
  for (const DestFrequency& truth : workload.true_top_k(5))
    EXPECT_EQ(basic.estimate_frequency(truth.dest),
              tracking.estimate_frequency(truth.dest));
  EXPECT_TRUE(tracking.check_invariants());
}

TEST(Correction, OccupancySurvivesDeletionsAndRebuild) {
  TrackingDcs tracker(corrected_params(7));
  Xoshiro256 rng(3);
  std::vector<std::pair<Addr, Addr>> live;
  for (int step = 0; step < 8000; ++step) {
    if (!live.empty() && rng.bounded(3) == 0) {
      const std::size_t pick = rng.bounded(live.size());
      const auto [dest, source] = live[pick];
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
      tracker.update(dest, source, -1);
    } else {
      const Addr dest = static_cast<Addr>(rng.bounded(64));
      const Addr source = static_cast<Addr>(rng());
      live.emplace_back(dest, source);
      tracker.update(dest, source, +1);
    }
  }
  ASSERT_TRUE(tracker.check_invariants());
  tracker.rebuild();
  EXPECT_TRUE(tracker.check_invariants());
}

TEST(Correction, DisabledByDefaultKeepsGranularEstimates) {
  DcsParams params;
  EXPECT_FALSE(params.collision_correction);
}

TEST(Correction, SerializationRoundTripsFlag) {
  DistinctCountSketch sketch(corrected_params(9));
  sketch.update(1, 2, +1);
  std::stringstream buffer;
  {
    BinaryWriter writer(buffer);
    sketch.serialize(writer);
  }
  BinaryReader reader(buffer);
  const DistinctCountSketch restored = DistinctCountSketch::deserialize(reader);
  EXPECT_TRUE(restored.params().collision_correction);
  EXPECT_TRUE(sketch == restored);
}

}  // namespace
}  // namespace dcs
