// Loopback integration tests for the src/service sketch-shipping subsystem:
// collector + agents over real TCP on 127.0.0.1.
//
// The linearity contract under test: merging per-site, per-epoch sketch
// deltas at the collector must be *bit-identical* to ingesting the
// concatenated stream into a single sketch, regardless of how the deltas
// interleave on the wire. Plus the fault-model guarantees: agent churn
// never blocks collector queries, epoch retransmits merge exactly once,
// and malformed frames are rejected without crashing anything.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <map>
#include <memory>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "obs/instruments.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/agent.hpp"
#include "service/collector.hpp"
#include "service/socket.hpp"
#include "service/wire.hpp"
#include "sketch/tracking_dcs.hpp"
#include "stream/generator.hpp"

namespace dcs::service {
namespace {

DcsParams small_params() {
  DcsParams params;
  params.num_tables = 3;
  params.buckets_per_table = 64;
  params.seed = 17;
  return params;
}

CollectorConfig collector_config() {
  CollectorConfig config;
  config.params = small_params();
  config.io_timeout_ms = 50;  // keep stop() fast in tests
  return config;
}

SiteAgentConfig agent_config(std::uint64_t site_id, std::uint16_t port) {
  SiteAgentConfig config;
  config.site_id = site_id;
  config.collector_port = port;
  config.params = small_params();
  config.epoch_updates = 500;
  config.backoff_initial_ms = 10;
  config.backoff_max_ms = 100;
  config.io_timeout_ms = 1000;
  config.jitter_seed = site_id;
  return config;
}

std::vector<FlowUpdate> zipf_updates(std::uint64_t pairs, std::uint64_t seed) {
  ZipfWorkloadConfig config;
  config.u_pairs = pairs;
  config.num_destinations = 40;
  config.skew = 1.3;
  config.seed = seed;
  return ZipfWorkload(config).updates();
}

// --- wire-level unit tests --------------------------------------------------

TEST(WireFraming, RoundTripsThroughDecoder) {
  Hello hello;
  hello.site_id = 42;
  hello.params_fingerprint = 0xabcdef;
  hello.first_epoch = 7;
  const std::string frame = encode_frame(MsgType::kHello, hello.encode());

  FrameDecoder decoder;
  decoder.feed(frame.data(), frame.size());
  const auto decoded = decoder.next();
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->type, MsgType::kHello);
  const Hello back = Hello::decode(decoded->payload);
  EXPECT_EQ(back.site_id, 42u);
  EXPECT_EQ(back.params_fingerprint, 0xabcdefu);
  EXPECT_EQ(back.first_epoch, 7u);
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(WireFraming, ReassemblesByteAtATime) {
  Ack ack;
  ack.epoch = 9;
  ack.status = AckStatus::kDuplicate;
  const std::string frame = encode_frame(MsgType::kAck, ack.encode());

  FrameDecoder decoder;
  for (std::size_t i = 0; i + 1 < frame.size(); ++i) {
    decoder.feed(frame.data() + i, 1);
    EXPECT_FALSE(decoder.next().has_value()) << "frame complete early at " << i;
  }
  decoder.feed(frame.data() + frame.size() - 1, 1);
  const auto decoded = decoder.next();
  ASSERT_TRUE(decoded.has_value());
  const Ack back = Ack::decode(decoded->payload);
  EXPECT_EQ(back.epoch, 9u);
  EXPECT_EQ(back.status, AckStatus::kDuplicate);
}

TEST(WireFraming, RejectsMalformedFrames) {
  const std::string good = encode_frame(MsgType::kHeartbeat,
                                        Heartbeat{}.encode());
  // Bad magic.
  {
    std::string bad = good;
    bad[0] ^= 0x01;
    FrameDecoder decoder;
    decoder.feed(bad.data(), bad.size());
    EXPECT_THROW(decoder.next(), WireError);
  }
  // Unsupported version.
  {
    std::string bad = good;
    bad[4] = 99;
    FrameDecoder decoder;
    decoder.feed(bad.data(), bad.size());
    EXPECT_THROW(decoder.next(), WireError);
  }
  // Unknown message type.
  {
    std::string bad = good;
    bad[5] = 0;
    FrameDecoder decoder;
    decoder.feed(bad.data(), bad.size());
    EXPECT_THROW(decoder.next(), WireError);
  }
  // Oversized length prefix (claims > kMaxPayloadBytes).
  {
    std::string bad = good;
    bad[6] = bad[7] = bad[8] = bad[9] = static_cast<char>(0xff);
    FrameDecoder decoder;
    decoder.feed(bad.data(), bad.size());
    EXPECT_THROW(decoder.next(), WireError);
  }
  // Corrupted payload byte -> CRC mismatch.
  {
    std::string bad = good;
    bad[kFrameHeaderBytes] ^= 0x40;
    FrameDecoder decoder;
    decoder.feed(bad.data(), bad.size());
    EXPECT_THROW(decoder.next(), WireError);
  }
  // Truncated frame is not an error — just incomplete.
  {
    FrameDecoder decoder;
    decoder.feed(good.data(), good.size() - 1);
    EXPECT_FALSE(decoder.next().has_value());
  }
}

TEST(WireFraming, AckRejectsUnknownStatus) {
  std::string payload = Ack{}.encode();
  payload[8] = 17;  // status byte (after the u64 epoch) out of range
  EXPECT_THROW(Ack::decode(payload), WireError);
}

TEST(WireFraming, AckRoundTripsRetryAfter) {
  Ack nack;
  nack.epoch = 41;
  nack.status = AckStatus::kRetryLater;
  nack.retry_after_ms = 750;
  const Ack back = Ack::decode(nack.encode());
  EXPECT_EQ(back.epoch, 41u);
  EXPECT_EQ(back.status, AckStatus::kRetryLater);
  EXPECT_EQ(back.retry_after_ms, 750u);
}

/// The receive-side cap boundary, tested at the decoder so no multi-MiB
/// allocations are needed: a payload of exactly the cap passes; one byte
/// over is rejected at the header, before any payload is buffered.
TEST(WireFraming, ReceiverPayloadCapBoundary) {
  const std::string at_cap(256, 'x');
  const std::string frame = encode_frame(MsgType::kHeartbeat, at_cap);

  FrameDecoder decoder;
  decoder.set_max_payload(256);
  decoder.feed(frame.data(), frame.size());
  const auto ok = decoder.next();
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->payload.size(), 256u);

  const std::string over = encode_frame(MsgType::kHeartbeat,
                                        std::string(257, 'x'));
  FrameDecoder capped;
  capped.set_max_payload(256);
  // Header alone is enough to reject: the decoder must throw without ever
  // seeing (or buffering) the announced payload.
  capped.feed(over.data(), kFrameHeaderBytes);
  try {
    capped.next();
    FAIL() << "oversized announcement accepted";
  } catch (const WireError& error) {
    EXPECT_STREQ(error.what(), "frame: oversized payload length");
  }

  // The cap clamps to the protocol-wide maximum; it can never be raised
  // above kMaxPayloadBytes.
  FrameDecoder wide;
  wide.set_max_payload(~0u);
  EXPECT_EQ(wide.max_payload(), kMaxPayloadBytes);
}

// --- loopback integration ---------------------------------------------------

/// The acceptance-criteria scenario: four agents split one stream; the
/// collector's merged sketch must equal the single-sketch reference on the
/// concatenated stream, bit for bit.
TEST(ServiceLoopback, FourSiteMergeEqualsSingleSketchReference) {
  Collector collector(collector_config());
  collector.start();

  const auto all_updates = zipf_updates(6000, 99);
  DistinctCountSketch reference(small_params());
  for (const auto& update : all_updates)
    reference.update(update.dest, update.source, update.delta);

  constexpr int kSites = 4;
  const std::size_t share = all_updates.size() / kSites;
  std::uint64_t total_epochs = 0;
  std::vector<std::thread> threads;
  for (int site = 0; site < kSites; ++site) {
    const std::size_t begin = static_cast<std::size_t>(site) * share;
    const std::size_t end = site == kSites - 1 ? all_updates.size()
                                               : begin + share;
    threads.emplace_back([&, begin, end, site] {
      SiteAgent agent(agent_config(static_cast<std::uint64_t>(site + 1),
                                   collector.port()));
      agent.start();
      for (std::size_t i = begin; i < end; ++i) agent.ingest(all_updates[i]);
      EXPECT_TRUE(agent.flush(10000));
      agent.stop();
    });
    const std::uint64_t site_updates = end - begin;
    total_epochs += (site_updates + 499) / 500;  // ceil(updates / epoch size)
  }
  for (auto& thread : threads) thread.join();

  ASSERT_TRUE(collector.wait_for_deltas(total_epochs, 10000));
  const auto stats = collector.stats();
  EXPECT_EQ(stats.deltas_merged, total_epochs);
  EXPECT_EQ(stats.frame_errors, 0u);
  EXPECT_EQ(stats.dropped_epochs, 0u);

  // Linearity: the merged sketch is bit-identical to the reference.
  EXPECT_TRUE(collector.merged_sketch() == reference);
  const TrackingDcs tracking_reference(reference);
  const auto merged_topk = collector.top_k(5);
  const auto reference_topk = tracking_reference.top_k(5);
  ASSERT_EQ(merged_topk.entries.size(), reference_topk.entries.size());
  for (std::size_t i = 0; i < merged_topk.entries.size(); ++i) {
    EXPECT_EQ(merged_topk.entries[i].group, reference_topk.entries[i].group);
    EXPECT_EQ(merged_topk.entries[i].estimate,
              reference_topk.entries[i].estimate);
  }
  collector.stop();
}

/// Killing an agent abruptly (destructor without Bye — a crash, as far as
/// the collector can tell) must not block queries or corrupt the merged
/// view, and a restarted agent resuming at a later epoch surfaces the gap
/// in the per-site drop accounting.
TEST(ServiceLoopback, AgentChurnKeepsCollectorConsistent) {
  Collector collector(collector_config());
  collector.start();

  const auto updates = zipf_updates(3000, 7);
  DistinctCountSketch expected(small_params());

  // Phase 1: agent ships 2 epochs (1000 updates), is killed abruptly.
  {
    auto agent = std::make_unique<SiteAgent>(agent_config(1, collector.port()));
    agent->start();
    for (std::size_t i = 0; i < 1000; ++i) agent->ingest(updates[i]);
    ASSERT_TRUE(agent->flush(10000));
    for (std::size_t i = 0; i < 1000; ++i)
      expected.update(updates[i].dest, updates[i].source, updates[i].delta);
    agent.reset();  // no Bye, no graceful stop
  }
  ASSERT_TRUE(collector.wait_for_deltas(2, 10000));

  // Queries keep working while the site is gone.
  EXPECT_TRUE(collector.merged_sketch() == expected);
  EXPECT_NO_THROW(collector.top_k(3));

  // Phase 2: the site restarts but lost epochs 3-4 (crashed before
  // shipping); it resumes at epoch 5.
  {
    auto config = agent_config(1, collector.port());
    config.first_epoch = 5;
    SiteAgent agent(config);
    agent.start();
    for (std::size_t i = 1000; i < 2000; ++i) agent.ingest(updates[i]);
    ASSERT_TRUE(agent.flush(10000));
    for (std::size_t i = 1000; i < 2000; ++i)
      expected.update(updates[i].dest, updates[i].source, updates[i].delta);
    agent.stop();
  }
  ASSERT_TRUE(collector.wait_for_deltas(4, 10000));

  EXPECT_TRUE(collector.merged_sketch() == expected);
  const auto sites = collector.site_stats();
  ASSERT_EQ(sites.size(), 1u);
  EXPECT_EQ(sites[0].epochs_merged, 4u);
  EXPECT_EQ(sites[0].last_epoch, 6u);
  EXPECT_EQ(sites[0].dropped_epochs, 2u);  // the gap is visible, not silent
  collector.stop();
}

/// A delta retransmitted after reconnect (at-least-once delivery) must
/// merge exactly once; the duplicate is acked as such, not re-merged.
TEST(ServiceLoopback, DuplicateDeltaMergesExactlyOnce) {
  CollectorConfig config = collector_config();
  config.run_detection = false;
  Collector collector(config);
  collector.start();

  DistinctCountSketch delta_sketch(small_params());
  delta_sketch.update(1, 2, +1);
  delta_sketch.update(1, 3, +1);
  std::ostringstream blob_out(std::ios::binary);
  BinaryWriter writer(blob_out);
  delta_sketch.serialize(writer);

  auto socket = tcp_connect("127.0.0.1", collector.port(), 1000);
  ASSERT_TRUE(socket.has_value());
  socket->set_timeouts(2000, 2000);
  FrameDecoder decoder;
  char buffer[4096];
  const auto read_ack = [&]() -> Ack {
    for (;;) {
      if (auto frame = decoder.next()) {
        EXPECT_EQ(frame->type, MsgType::kAck);
        return Ack::decode(frame->payload, frame->version);
      }
      const RecvResult got = socket->recv_some(buffer, sizeof buffer);
      if (got.bytes == 0) {
        ADD_FAILURE() << "connection lost awaiting ack";
        return Ack{};
      }
      decoder.feed(buffer, got.bytes);
    }
  };

  Hello hello;
  hello.site_id = 5;
  hello.params_fingerprint = small_params().fingerprint();
  ASSERT_TRUE(socket->send_all(encode_frame(MsgType::kHello, hello.encode())));
  EXPECT_EQ(read_ack().status, AckStatus::kOk);

  SnapshotDelta delta;
  delta.site_id = 5;
  delta.epoch = 1;
  delta.updates = 2;
  delta.sketch_blob = std::move(blob_out).str();
  const std::string frame =
      encode_frame(MsgType::kSnapshotDelta, delta.encode());
  ASSERT_TRUE(socket->send_all(frame));
  Ack first = read_ack();
  EXPECT_EQ(first.status, AckStatus::kOk);
  EXPECT_EQ(first.epoch, 1u);
  ASSERT_TRUE(socket->send_all(frame));  // identical retransmit
  Ack second = read_ack();
  EXPECT_EQ(second.status, AckStatus::kDuplicate);

  const auto stats = collector.stats();
  EXPECT_EQ(stats.deltas_merged, 1u);
  EXPECT_EQ(stats.duplicate_deltas, 1u);
  EXPECT_TRUE(collector.merged_sketch() == delta_sketch);
  collector.stop();
}

/// Malformed input — garbage bytes, bad CRC, oversized length, truncated
/// payload, corrupt sketch blob — must drop only the offending connection;
/// the collector keeps serving well-formed peers afterwards.
TEST(ServiceLoopback, MalformedFramesAreRejectedWithoutCrashing) {
  CollectorConfig config = collector_config();
  config.run_detection = false;
  Collector collector(config);
  collector.start();

  const auto send_garbage = [&](std::string bytes) {
    auto socket = tcp_connect("127.0.0.1", collector.port(), 1000);
    ASSERT_TRUE(socket.has_value());
    ASSERT_TRUE(socket->send_all(bytes));
    // Collector should close on us; wait for EOF (bounded by its timeout).
    socket->set_timeouts(3000, 3000);
    char buffer[256];
    for (int i = 0; i < 100; ++i) {
      const RecvResult got = socket->recv_some(buffer, sizeof buffer);
      if (got.closed || got.error) return;
    }
    ADD_FAILURE() << "collector never dropped the malformed connection";
  };

  send_garbage("this is not a frame at all, definitely no magic");
  {
    std::string bad = encode_frame(MsgType::kHello, Hello{}.encode());
    bad[bad.size() - 1] ^= 0x01;  // corrupt the CRC itself
    send_garbage(bad);
  }
  {
    std::string bad = encode_frame(MsgType::kHello, Hello{}.encode());
    bad[6] = bad[7] = bad[8] = bad[9] = static_cast<char>(0xff);
    send_garbage(bad);
  }
  {
    // Well-framed delta whose sketch blob is corrupt: the frame CRC is
    // valid but the blob's own footer check must reject it.
    Hello hello;
    hello.site_id = 9;
    hello.params_fingerprint = small_params().fingerprint();
    DistinctCountSketch sketch(small_params());
    sketch.update(4, 5, +1);
    std::ostringstream out(std::ios::binary);
    BinaryWriter writer(out);
    sketch.serialize(writer);
    std::string blob = std::move(out).str();
    blob[blob.size() / 2] ^= 0x20;
    SnapshotDelta delta;
    delta.site_id = 9;
    delta.epoch = 1;
    delta.sketch_blob = blob;
    send_garbage(encode_frame(MsgType::kHello, hello.encode()) +
                 encode_frame(MsgType::kSnapshotDelta, delta.encode()));
  }

  EXPECT_GE(collector.stats().frame_errors, 4u);
  EXPECT_EQ(collector.stats().deltas_merged, 0u);

  // A well-behaved agent still gets served.
  SiteAgent agent(agent_config(1, collector.port()));
  agent.start();
  for (const auto& update : zipf_updates(600, 3)) agent.ingest(update);
  EXPECT_TRUE(agent.flush(10000));
  agent.stop();
  EXPECT_GE(collector.stats().deltas_merged, 1u);
  collector.stop();
}

/// A parameter-fingerprint mismatch is rejected at Hello, before any merge.
TEST(ServiceLoopback, ParameterMismatchIsRejectedAtHello) {
  Collector collector(collector_config());
  collector.start();

  auto config = agent_config(1, collector.port());
  config.params.seed = 12345;  // different hash seeds cannot be merged
  SiteAgent agent(config);
  agent.start();
  agent.ingest(1, 2, +1);
  agent.seal_epoch();
  EXPECT_FALSE(agent.flush(3000));
  const auto stats = agent.stats();
  EXPECT_TRUE(stats.rejected);
  EXPECT_EQ(stats.epochs_shipped, 0u);
  EXPECT_EQ(collector.stats().rejected_hellos, 1u);
  EXPECT_EQ(collector.stats().deltas_merged, 0u);
  agent.stop();
  collector.stop();
}

/// With no collector reachable, the agent keeps ingesting, spools up to the
/// bound, then sheds the *oldest* epochs and accounts every drop.
TEST(ServiceAgent, SpoolOverflowDropsOldestAndCounts) {
  // Grab an ephemeral port, then close the listener: connections to it are
  // refused, so the agent can never drain.
  std::uint16_t dead_port = 0;
  {
    auto listener = TcpListener::listen("127.0.0.1", 0);
    ASSERT_TRUE(listener.has_value());
    dead_port = listener->port();
  }

  auto config = agent_config(1, dead_port);
  config.epoch_updates = 10;
  config.spool_epochs = 3;
  SiteAgent agent(config);
  agent.start();
  for (int i = 0; i < 80; ++i)
    agent.ingest(static_cast<Addr>(i % 4), static_cast<Addr>(i), +1);

  const auto stats = agent.stats();
  EXPECT_EQ(stats.epochs_sealed, 8u);
  EXPECT_EQ(stats.epochs_dropped, 5u);  // 8 sealed, spool holds 3
  EXPECT_EQ(stats.spool_depth, 3u);
  EXPECT_EQ(stats.epochs_shipped, 0u);
  agent.stop(100);
}

/// Late-starting collector: the agent retries with backoff and delivers
/// everything it still has spooled once the collector appears.
TEST(ServiceLoopback, AgentSurvivesCollectorOutage) {
  // Reserve a port for the future collector by binding and closing.
  std::uint16_t port = 0;
  {
    auto listener = TcpListener::listen("127.0.0.1", 0);
    ASSERT_TRUE(listener.has_value());
    port = listener->port();
  }

  auto config = agent_config(1, port);
  SiteAgent agent(config);
  agent.start();
  const auto updates = zipf_updates(1500, 11);
  DistinctCountSketch expected(small_params());
  for (const auto& update : updates) {
    agent.ingest(update);
    expected.update(update.dest, update.source, update.delta);
  }
  agent.seal_epoch();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_GT(agent.stats().spool_depth, 0u);  // nothing shipped yet

  CollectorConfig collector_cfg = collector_config();
  collector_cfg.port = port;
  Collector collector(collector_cfg);
  collector.start();

  EXPECT_TRUE(agent.flush(15000));
  agent.stop();
  const auto stats = agent.stats();
  EXPECT_EQ(stats.epochs_dropped, 0u);
  EXPECT_GE(stats.reconnects, 1u);
  EXPECT_TRUE(collector.merged_sketch() == expected);
  collector.stop();
}

/// Duplicate-delivery regression across a collector restart: four sites
/// whose delta acks were lost in the crash re-ship every pre-checkpoint
/// epoch to the recovered collector. Each re-ship must be acked kDuplicate
/// without re-merging (counted by the post-recovery dedup oracle), and the
/// merged sketch must equal the reference of every unique epoch exactly.
TEST(ServiceRecovery, ReshippedPreCheckpointEpochsAreAckedNotRemerged) {
  CollectorConfig config = collector_config();
  config.run_detection = false;
  config.state_dir = ::testing::TempDir() +
                     "ServiceRecovery.ReshippedPreCheckpointEpochs.state";
  std::filesystem::remove_all(config.state_dir);
  config.checkpoint_every = 2;

  // Per-site, per-epoch deltas: 4 sites x 3 epochs, each its own sketch.
  DistinctCountSketch expected(small_params());
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::string> blobs;
  for (std::uint64_t site = 1; site <= 4; ++site)
    for (std::uint64_t epoch = 1; epoch <= 3; ++epoch) {
      DistinctCountSketch delta(small_params());
      for (std::uint64_t i = 0; i < 40; ++i) {
        const auto dest = static_cast<Addr>(site * 100 + i % 6);
        const auto source = static_cast<Addr>(epoch * 1000 + i);
        delta.update(dest, source, +1);
        expected.update(dest, source, +1);
      }
      std::ostringstream out(std::ios::binary);
      BinaryWriter writer(out);
      delta.serialize(writer);
      blobs[{site, epoch}] = std::move(out).str();
    }

  /// One raw-socket site connection (the agent path is covered elsewhere;
  /// raw frames let the test re-ship exactly what it wants).
  struct RawSite {
    std::optional<TcpSocket> socket;
    FrameDecoder decoder;
    char buffer[4096];

    Ack read_ack() {
      for (;;) {
        if (auto frame = decoder.next()) {
          EXPECT_EQ(frame->type, MsgType::kAck);
          return Ack::decode(frame->payload, frame->version);
        }
        const RecvResult got = socket->recv_some(buffer, sizeof buffer);
        if (got.bytes == 0) {
          ADD_FAILURE() << "connection lost awaiting ack";
          return Ack{};
        }
        decoder.feed(buffer, got.bytes);
      }
    }

    Ack hello(std::uint64_t site_id, std::uint16_t port) {
      socket = tcp_connect("127.0.0.1", port, 1000);
      EXPECT_TRUE(socket.has_value());
      socket->set_timeouts(3000, 3000);
      Hello greeting;
      greeting.site_id = site_id;
      greeting.params_fingerprint = small_params().fingerprint();
      EXPECT_TRUE(
          socket->send_all(encode_frame(MsgType::kHello, greeting.encode())));
      return read_ack();
    }

    Ack ship(std::uint64_t site_id, std::uint64_t epoch,
             const std::string& blob) {
      SnapshotDelta delta;
      delta.site_id = site_id;
      delta.epoch = epoch;
      delta.updates = 40;
      delta.sketch_blob = blob;
      EXPECT_TRUE(socket->send_all(
          encode_frame(MsgType::kSnapshotDelta, delta.encode())));
      return read_ack();
    }
  };

  // Phase 1: all 12 epochs land and are durable (journal fsync per merge),
  // then the collector goes away. stop() checkpoints, but even without that
  // every acked epoch is covered by the journal.
  {
    Collector collector(config);
    collector.start();
    for (std::uint64_t site = 1; site <= 4; ++site) {
      RawSite raw;
      EXPECT_EQ(raw.hello(site, collector.port()).status, AckStatus::kOk);
      for (std::uint64_t epoch = 1; epoch <= 3; ++epoch)
        EXPECT_EQ(raw.ship(site, epoch, blobs[{site, epoch}]).status,
                  AckStatus::kOk);
    }
    ASSERT_TRUE(collector.wait_for_deltas(12, 10000));
    collector.stop();
    ASSERT_TRUE(collector.merged_sketch() == expected);
  }

  // Phase 2: recovered collector. Every site reconnects believing nothing
  // was delivered (lost acks) and re-ships epochs 1-3, then ships epoch 4.
  Collector recovered(config);
  EXPECT_EQ(recovered.stats().recoveries, 1u);
  ASSERT_TRUE(recovered.merged_sketch() == expected);
  recovered.start();

  for (std::uint64_t site = 1; site <= 4; ++site) {
    RawSite raw;
    const Ack hello_ack = raw.hello(site, recovered.port());
    EXPECT_EQ(hello_ack.status, AckStatus::kOk);
    EXPECT_EQ(hello_ack.epoch, 3u);  // resume watermark from the checkpoint
    for (std::uint64_t epoch = 1; epoch <= 3; ++epoch) {
      const Ack ack = raw.ship(site, epoch, blobs[{site, epoch}]);
      EXPECT_EQ(ack.status, AckStatus::kDuplicate);
      EXPECT_EQ(ack.epoch, epoch);
    }
    DistinctCountSketch fresh(small_params());
    for (std::uint64_t i = 0; i < 40; ++i) {
      const auto dest = static_cast<Addr>(site * 100 + i % 6);
      fresh.update(dest, static_cast<Addr>(4000 + i), +1);
      expected.update(dest, static_cast<Addr>(4000 + i), +1);
    }
    std::ostringstream out(std::ios::binary);
    BinaryWriter writer(out);
    fresh.serialize(writer);
    EXPECT_EQ(raw.ship(site, 4, std::move(out).str()).status, AckStatus::kOk);
  }

  const auto stats = recovered.stats();
  EXPECT_EQ(stats.post_recovery_duplicates, 12u);  // the dedup oracle
  EXPECT_EQ(stats.duplicate_deltas, 12u);
  EXPECT_EQ(stats.deltas_merged, 16u);  // 12 recovered + 4 fresh, no doubles
  EXPECT_TRUE(recovered.merged_sketch() == expected);
  const auto sites = recovered.site_stats();
  ASSERT_EQ(sites.size(), 4u);
  for (const auto& site : sites) {
    EXPECT_EQ(site.last_epoch, 4u);
    EXPECT_EQ(site.epochs_merged, 4u);
    EXPECT_EQ(site.duplicate_deltas, 3u);
  }
  recovered.stop();
}

/// The Hello-ack resume watermark end to end with a real agent: spooled
/// epochs at or below the recovered collector's watermark are pruned
/// locally (counted as resume_skips), never re-shipped.
TEST(ServiceRecovery, AgentPrunesSpooledEpochsBelowResumeWatermark) {
  CollectorConfig config = collector_config();
  config.run_detection = false;
  config.state_dir =
      ::testing::TempDir() + "ServiceRecovery.AgentPrunes.state";
  std::filesystem::remove_all(config.state_dir);

  const auto updates = zipf_updates(2000, 23);

  // Phase 1: the agent ships epochs 1-2, which become durable; the
  // collector then "crashes" (goes away) before the agent can ship more.
  std::uint16_t port = 0;
  {
    Collector collector(config);
    collector.start();
    port = collector.port();
    auto cfg = agent_config(7, port);
    SiteAgent agent(cfg);
    agent.start();
    for (std::size_t i = 0; i < 1000; ++i) agent.ingest(updates[i]);
    ASSERT_TRUE(agent.flush(10000));
    agent.stop();
    ASSERT_TRUE(collector.wait_for_deltas(2, 10000));
    collector.stop();
  }

  // Phase 2: a restarted agent re-seals the same epochs 1-2 (same data,
  // deterministic workload) plus new epochs 3-4 while the collector is
  // still down — so all four sit in its spool.
  auto cfg = agent_config(7, port);
  SiteAgent agent(cfg);
  for (std::size_t i = 0; i < 2000; ++i) agent.ingest(updates[i]);
  agent.seal_epoch();
  ASSERT_EQ(agent.stats().spool_depth, 4u);

  // Recovered collector on the same port: its Hello ack says "epochs <= 2
  // are already durable here", and the agent ships only 3-4.
  config.port = port;
  Collector recovered(config);
  EXPECT_EQ(recovered.stats().recoveries, 1u);
  recovered.start();
  agent.start();
  EXPECT_TRUE(agent.flush(15000));
  agent.stop();

  const auto stats = agent.stats();
  EXPECT_EQ(stats.resume_skips, 2u);
  EXPECT_EQ(stats.epochs_shipped, 4u);  // 2 skipped + 2 shipped count alike
  const auto collector_stats = recovered.stats();
  EXPECT_EQ(collector_stats.deltas_merged, 4u);  // 2 recovered + 2 fresh
  EXPECT_EQ(collector_stats.duplicate_deltas, 0u);
  EXPECT_EQ(collector_stats.post_recovery_duplicates, 0u);

  DistinctCountSketch expected(small_params());
  for (std::size_t i = 0; i < 2000; ++i)
    expected.update(updates[i].dest, updates[i].source, updates[i].delta);
  EXPECT_TRUE(recovered.merged_sketch() == expected);
  recovered.stop();
}

// --- overload protection ----------------------------------------------------
//
// Wire-level abuse against a live collector: slow-loris partial frames,
// stalls, oversized announcements, heartbeat floods, and admission sheds.
// The contract throughout: the abuser's connection dies (and the table
// shrinks), everyone else keeps merging, and anything shed is re-shipped —
// overload costs latency, never data.

/// Wait until the collector's live-connection count drops to `want`.
bool wait_for_connections(const Collector& collector, std::size_t want,
                          int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (collector.connection_count() <= want) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return collector.connection_count() <= want;
}

TEST(ServiceOverload, PartialHeaderStallHitsFrameDeadline) {
  CollectorConfig config = collector_config();
  config.frame_deadline_ms = 100;
  config.idle_timeout_ms = 0;  // isolate: only the frame deadline may fire
  Collector collector(config);
  collector.start();

  auto socket = tcp_connect("127.0.0.1", collector.port(), 1000);
  ASSERT_TRUE(socket.has_value());
  socket->set_timeouts(2000, 2000);
  // Four header bytes, then silence: an incomplete frame that will never
  // finish. The deadline, not a byte count, must kill it.
  const std::uint32_t magic = kWireMagic;
  ASSERT_TRUE(socket->send_all(&magic, sizeof magic));
  ASSERT_TRUE(wait_for_connections(collector, 1, 2000));

  char c;
  const RecvResult got = socket->recv_some(&c, 1);  // blocks until the FIN
  EXPECT_TRUE(got.closed || got.error);
  EXPECT_TRUE(wait_for_connections(collector, 0, 2000));
  EXPECT_EQ(collector.stats().deadline_drops, 1u);
  EXPECT_EQ(collector.stats().idle_reaped, 0u);
  collector.stop();
}

TEST(ServiceOverload, DribbledBytesCannotEvadeTheDeadline) {
  CollectorConfig config = collector_config();
  config.frame_deadline_ms = 150;
  config.idle_timeout_ms = 0;
  Collector collector(config);
  collector.start();

  auto socket = tcp_connect("127.0.0.1", collector.port(), 1000);
  ASSERT_TRUE(socket.has_value());
  socket->set_timeouts(200, 200);
  // Classic slow-loris: keep the connection "active" with one byte of a
  // valid frame every 30 ms. Activity must NOT reset the frame clock.
  const std::string frame = encode_frame(MsgType::kHello, Hello{}.encode());
  bool dropped = false;
  for (std::size_t i = 0; i < frame.size(); ++i) {
    if (!socket->send_all(frame.data() + i, 1)) {
      dropped = true;
      break;
    }
    char c;
    const RecvResult got = socket->recv_some(&c, 1);
    if (got.closed || got.error) {
      dropped = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  }
  EXPECT_TRUE(dropped) << "collector never dropped the dribbling peer";
  EXPECT_TRUE(wait_for_connections(collector, 0, 2000));
  EXPECT_EQ(collector.stats().deadline_drops, 1u);
  collector.stop();
}

TEST(ServiceOverload, SilentConnectionIsIdleReaped) {
  CollectorConfig config = collector_config();
  config.frame_deadline_ms = 0;  // isolate: only the idle reaper may fire
  config.idle_timeout_ms = 100;
  Collector collector(config);
  collector.start();

  auto socket = tcp_connect("127.0.0.1", collector.port(), 1000);
  ASSERT_TRUE(socket.has_value());
  socket->set_timeouts(2000, 2000);
  char c;
  const RecvResult got = socket->recv_some(&c, 1);
  EXPECT_TRUE(got.closed || got.error);
  EXPECT_TRUE(wait_for_connections(collector, 0, 2000));
  EXPECT_EQ(collector.stats().idle_reaped, 1u);
  EXPECT_EQ(collector.stats().deadline_drops, 0u);
  collector.stop();
}

TEST(ServiceOverload, OversizedAnnouncementDropsConnectionNotCollector) {
  CollectorConfig config = collector_config();
  // A real delta frame for small_params() is ~1 MiB, so a 2 MiB cap admits
  // legitimate traffic while rejecting the abuser below.
  config.max_frame_bytes = 2u << 20;
  Collector collector(config);
  collector.start();

  // Hand-build a header announcing 4 MiB (over the 2 MiB receive cap but
  // far under the protocol cap, so only the per-collector limit rejects).
  std::string header;
  const auto put_u32 = [&header](std::uint32_t v) {
    header.append(reinterpret_cast<const char*>(&v), sizeof v);
  };
  put_u32(kWireMagic);
  header.push_back(static_cast<char>(kWireVersion));
  header.push_back(static_cast<char>(MsgType::kSnapshotDelta));
  put_u32(4u << 20);

  auto abuser = tcp_connect("127.0.0.1", collector.port(), 1000);
  ASSERT_TRUE(abuser.has_value());
  abuser->set_timeouts(2000, 2000);
  ASSERT_TRUE(abuser->send_all(header));
  char c;
  const RecvResult got = abuser->recv_some(&c, 1);
  EXPECT_TRUE(got.closed || got.error);
  EXPECT_TRUE(wait_for_connections(collector, 0, 2000));
  EXPECT_EQ(collector.stats().frame_errors, 1u);

  // The collector itself is unharmed: a well-behaved agent still merges.
  SiteAgent agent(agent_config(1, collector.port()));
  agent.start();
  for (const auto& update : zipf_updates(1000, 5))
    agent.ingest(update);
  EXPECT_TRUE(agent.flush(15000));
  agent.stop();
  EXPECT_GT(collector.stats().deltas_merged, 0u);
  collector.stop();
}

TEST(ServiceOverload, HeartbeatFloodNeitherStallsNorKills) {
  CollectorConfig config = collector_config();
  config.frame_deadline_ms = 200;
  Collector collector(config);
  collector.start();

  // One connection interleaving a heartbeat flood with real deltas: many
  // complete frames arriving back to back must never trip the partial-
  // frame deadline, and the deltas in between must all merge.
  auto socket = tcp_connect("127.0.0.1", collector.port(), 1000);
  ASSERT_TRUE(socket.has_value());
  socket->set_timeouts(3000, 3000);
  FrameDecoder decoder;
  char buffer[4096];
  const auto read_ack = [&]() -> Ack {
    for (;;) {
      if (auto frame = decoder.next()) {
        EXPECT_EQ(frame->type, MsgType::kAck);
        return Ack::decode(frame->payload, frame->version);
      }
      const RecvResult got = socket->recv_some(buffer, sizeof buffer);
      if (got.bytes == 0) {
        ADD_FAILURE() << "connection lost awaiting ack";
        return Ack{};
      }
      decoder.feed(buffer, got.bytes);
    }
  };

  Hello hello;
  hello.site_id = 3;
  hello.params_fingerprint = small_params().fingerprint();
  ASSERT_TRUE(socket->send_all(encode_frame(MsgType::kHello, hello.encode())));
  EXPECT_EQ(read_ack().status, AckStatus::kOk);

  DistinctCountSketch expected(small_params());
  Heartbeat beat;
  beat.site_id = 3;
  for (std::uint64_t epoch = 1; epoch <= 3; ++epoch) {
    // 100 heartbeats in one burst, batched into as few sends as the stack
    // allows — the decoder sees multiple frames per recv.
    std::string burst;
    for (int i = 0; i < 100; ++i) {
      beat.current_epoch = epoch;
      burst += encode_frame(MsgType::kHeartbeat, beat.encode());
    }
    ASSERT_TRUE(socket->send_all(burst));

    DistinctCountSketch delta(small_params());
    for (std::uint64_t i = 0; i < 50; ++i) {
      const auto dest = static_cast<Addr>(i % 4);
      const auto source = static_cast<Addr>(epoch * 1000 + i);
      delta.update(dest, source, +1);
      expected.update(dest, source, +1);
    }
    std::ostringstream out(std::ios::binary);
    BinaryWriter writer(out);
    delta.serialize(writer);
    SnapshotDelta ship;
    ship.site_id = 3;
    ship.epoch = epoch;
    ship.updates = 50;
    ship.sketch_blob = std::move(out).str();
    ASSERT_TRUE(
        socket->send_all(encode_frame(MsgType::kSnapshotDelta, ship.encode())));
    // Each v3 heartbeat is acked with epoch 0; the delta ack (epoch >= 1)
    // arrives after every frame of the burst was processed in order.
    Ack ack;
    do {
      ack = read_ack();
      EXPECT_EQ(ack.status, AckStatus::kOk);
    } while (ack.epoch == 0);
    EXPECT_EQ(ack.epoch, epoch);
  }

  const auto stats = collector.stats();
  EXPECT_GE(stats.frames, 304u);  // hello + 300 heartbeats + 3 deltas
  EXPECT_EQ(stats.deadline_drops, 0u);
  EXPECT_EQ(stats.frame_errors, 0u);
  EXPECT_EQ(stats.deltas_merged, 3u);
  EXPECT_TRUE(collector.merged_sketch() == expected);
  collector.stop();
}

TEST(ServiceOverload, ShedDeltasAreNackedAndReshippedExactlyOnce) {
  CollectorConfig config = collector_config();
  config.admission.site_rate_per_sec = 5.0;  // ~one admit per 200 ms
  config.admission.site_burst = 1.0;
  config.admission.min_retry_after_ms = 10;
  config.admission.max_retry_after_ms = 300;
  Collector collector(config);
  collector.start();

  // Raw site shipping 4 epochs as fast as NACKs allow: every shed must
  // come back kRetryLater with a usable hint, and honoring the hint must
  // eventually land every epoch exactly once.
  auto socket = tcp_connect("127.0.0.1", collector.port(), 1000);
  ASSERT_TRUE(socket.has_value());
  socket->set_timeouts(3000, 3000);
  FrameDecoder decoder;
  char buffer[4096];
  const auto read_ack = [&]() -> Ack {
    for (;;) {
      if (auto frame = decoder.next()) return Ack::decode(frame->payload, frame->version);
      const RecvResult got = socket->recv_some(buffer, sizeof buffer);
      if (got.bytes == 0) {
        ADD_FAILURE() << "connection lost awaiting ack";
        return Ack{};
      }
      decoder.feed(buffer, got.bytes);
    }
  };

  Hello hello;
  hello.site_id = 9;
  hello.params_fingerprint = small_params().fingerprint();
  ASSERT_TRUE(socket->send_all(encode_frame(MsgType::kHello, hello.encode())));
  EXPECT_EQ(read_ack().status, AckStatus::kOk);

  DistinctCountSketch expected(small_params());
  std::uint64_t nacks = 0;
  for (std::uint64_t epoch = 1; epoch <= 4; ++epoch) {
    DistinctCountSketch delta(small_params());
    for (std::uint64_t i = 0; i < 30; ++i) {
      const auto dest = static_cast<Addr>(i % 3);
      const auto source = static_cast<Addr>(epoch * 500 + i);
      delta.update(dest, source, +1);
      expected.update(dest, source, +1);
    }
    std::ostringstream out(std::ios::binary);
    BinaryWriter writer(out);
    delta.serialize(writer);
    SnapshotDelta ship;
    ship.site_id = 9;
    ship.epoch = epoch;
    ship.updates = 30;
    ship.sketch_blob = std::move(out).str();
    const std::string frame =
        encode_frame(MsgType::kSnapshotDelta, ship.encode());

    for (int attempt = 0;; ++attempt) {
      ASSERT_LT(attempt, 100) << "epoch " << epoch << " never admitted";
      ASSERT_TRUE(socket->send_all(frame));
      const Ack ack = read_ack();
      ASSERT_EQ(ack.epoch, epoch);
      if (ack.status == AckStatus::kOk) break;
      ASSERT_EQ(ack.status, AckStatus::kRetryLater);
      ASSERT_GT(ack.retry_after_ms, 0u);
      ++nacks;
      std::this_thread::sleep_for(
          std::chrono::milliseconds(ack.retry_after_ms));
    }
  }

  const auto stats = collector.stats();
  EXPECT_GT(stats.shed_deltas, 0u);
  EXPECT_EQ(nacks, stats.shed_deltas);
  EXPECT_EQ(stats.deltas_merged, 4u);
  EXPECT_EQ(stats.duplicate_deltas, 0u);  // a shed is not a duplicate
  EXPECT_EQ(stats.dropped_epochs, 0u);    // and never a gap
  EXPECT_TRUE(collector.merged_sketch() == expected);
  collector.stop();
}

TEST(ServiceOverload, AgentBacksOffOnNackWithoutSpillingItsSpool) {
  CollectorConfig config = collector_config();
  config.admission.site_rate_per_sec = 10.0;
  config.admission.site_burst = 2.0;
  config.admission.min_retry_after_ms = 10;
  config.admission.max_retry_after_ms = 200;
  Collector collector(config);
  collector.start();

  // A real agent sealing epochs far faster than the bucket admits. The
  // NACK path must delay shipping without ever evicting a spooled epoch,
  // and the final merged sketch must equal the reference bit for bit.
  SiteAgentConfig agent_cfg = agent_config(1, collector.port());
  agent_cfg.epoch_updates = 200;
  agent_cfg.spool_epochs = 256;
  SiteAgent agent(agent_cfg);
  agent.start();

  const auto updates = zipf_updates(4000, 77);
  DistinctCountSketch expected(small_params());
  for (const auto& update : updates) {
    agent.ingest(update);
    expected.update(update.dest, update.source, update.delta);
  }
  EXPECT_TRUE(agent.flush(30000));
  agent.stop();

  const auto agent_stats = agent.stats();
  EXPECT_GT(agent_stats.nacks, 0u);
  EXPECT_EQ(agent_stats.epochs_dropped, 0u);
  const auto stats = collector.stats();
  EXPECT_GT(stats.shed_deltas, 0u);
  EXPECT_EQ(stats.dropped_epochs, 0u);
  EXPECT_EQ(stats.post_recovery_duplicates, 0u);
  EXPECT_TRUE(collector.merged_sketch() == expected);
  collector.stop();
}

// --- wire version negotiation (v2 <-> v3) -----------------------------------

TEST(WireVersioning, FrameCarriesItsVersionAndRejectsOutOfRange) {
  const std::string beat = Heartbeat{}.encode();
  FrameDecoder decoder;

  const std::string v2 = encode_frame(MsgType::kHeartbeat, beat, 2);
  decoder.feed(v2.data(), v2.size());
  auto frame = decoder.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->version, 2);

  const std::string v3 = encode_frame(MsgType::kHeartbeat, beat);
  decoder.feed(v3.data(), v3.size());
  frame = decoder.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->version, kWireVersion);

  EXPECT_THROW(encode_frame(MsgType::kHeartbeat, beat, 1), WireError);
  EXPECT_THROW(encode_frame(MsgType::kHeartbeat, beat,
                            static_cast<std::uint8_t>(kWireVersion + 1)),
               WireError);
}

TEST(WireVersioning, SnapshotDeltaTimestampsAreV3Only) {
  SnapshotDelta delta;
  delta.site_id = 4;
  delta.epoch = 11;
  delta.updates = 256;
  delta.seal_unix_ns = 111;
  delta.seal_steady_ns = 222;
  delta.spool_unix_ns = 333;
  delta.ship_unix_ns = 444;
  delta.sketch_blob = "blobbytes";

  // v3 payloads round-trip every stamp.
  const SnapshotDelta back3 = SnapshotDelta::decode(delta.encode());
  EXPECT_EQ(back3.seal_unix_ns, 111u);
  EXPECT_EQ(back3.seal_steady_ns, 222u);
  EXPECT_EQ(back3.spool_unix_ns, 333u);
  EXPECT_EQ(back3.ship_unix_ns, 444u);
  EXPECT_EQ(back3.sketch_blob, "blobbytes");

  // A v2 payload is the legacy layout: shorter, no stamps on decode.
  const std::string v2_payload = delta.encode(2);
  EXPECT_EQ(delta.encode().size(), v2_payload.size() + 4 * 8);
  const SnapshotDelta back2 = SnapshotDelta::decode(v2_payload, 2);
  EXPECT_EQ(back2.site_id, 4u);
  EXPECT_EQ(back2.epoch, 11u);
  EXPECT_EQ(back2.updates, 256u);
  EXPECT_EQ(back2.seal_unix_ns, 0u);
  EXPECT_EQ(back2.sketch_blob, "blobbytes");

  // Misreading a v2 payload with the v3 layout must fail loudly, not
  // produce a silently corrupt delta.
  EXPECT_ANY_THROW(SnapshotDelta::decode(v2_payload, 3));
}

/// A legacy v2 agent (no timestamps, no heartbeat-ack expectation) against a
/// v3 collector: the collector must answer in v2 frames, merge the v2 delta,
/// and stay silent on v2 heartbeats — the exact v2 Ack contract.
TEST(WireVersioning, V2PeerInteroperatesWithV3Collector) {
  CollectorConfig config = collector_config();
  config.run_detection = false;
  Collector collector(config);
  collector.start();

  DistinctCountSketch delta_sketch(small_params());
  delta_sketch.update(8, 2, +1);
  std::ostringstream blob_out(std::ios::binary);
  BinaryWriter writer(blob_out);
  delta_sketch.serialize(writer);

  auto socket = tcp_connect("127.0.0.1", collector.port(), 1000);
  ASSERT_TRUE(socket.has_value());
  socket->set_timeouts(2000, 2000);
  FrameDecoder decoder;
  char buffer[4096];
  const auto read_ack_frame = [&]() -> std::optional<Frame> {
    for (;;) {
      if (auto frame = decoder.next()) return frame;
      const RecvResult got = socket->recv_some(buffer, sizeof buffer);
      if (got.bytes == 0) return std::nullopt;
      decoder.feed(buffer, got.bytes);
    }
  };

  Hello hello;
  hello.site_id = 3;
  hello.params_fingerprint = small_params().fingerprint();
  ASSERT_TRUE(
      socket->send_all(encode_frame(MsgType::kHello, hello.encode(2), 2)));
  auto hello_ack = read_ack_frame();
  ASSERT_TRUE(hello_ack.has_value());
  EXPECT_EQ(hello_ack->version, 2) << "reply framed above the peer's version";
  EXPECT_EQ(Ack::decode(hello_ack->payload, hello_ack->version).status, AckStatus::kOk);

  // v2 heartbeats get no ack (a v2 agent would misread one as a stray
  // delta ack); the connection must stay healthy regardless.
  ASSERT_TRUE(socket->send_all(
      encode_frame(MsgType::kHeartbeat, Heartbeat{}.encode(), 2)));

  SnapshotDelta delta;
  delta.site_id = 3;
  delta.epoch = 1;
  delta.updates = 1;
  delta.sketch_blob = std::move(blob_out).str();
  ASSERT_TRUE(socket->send_all(
      encode_frame(MsgType::kSnapshotDelta, delta.encode(2), 2)));
  auto delta_ack = read_ack_frame();
  ASSERT_TRUE(delta_ack.has_value());
  EXPECT_EQ(delta_ack->version, 2);
  const Ack ack = Ack::decode(delta_ack->payload, delta_ack->version);
  EXPECT_EQ(ack.status, AckStatus::kOk);
  EXPECT_EQ(ack.epoch, 1u) << "heartbeat must not have been acked before "
                              "the delta (v2 ack-stream contract)";

  EXPECT_EQ(collector.stats().deltas_merged, 1u);
  EXPECT_TRUE(collector.merged_sketch() == delta_sketch);
  collector.stop();
}

/// A v3 peer's heartbeats are acked with epoch 0 — the free RTT probe.
TEST(WireVersioning, V3HeartbeatsAreAckedWithEpochZero) {
  CollectorConfig config = collector_config();
  config.run_detection = false;
  Collector collector(config);
  collector.start();

  auto socket = tcp_connect("127.0.0.1", collector.port(), 1000);
  ASSERT_TRUE(socket.has_value());
  socket->set_timeouts(2000, 2000);
  FrameDecoder decoder;
  char buffer[4096];
  const auto read_ack_frame = [&]() -> std::optional<Frame> {
    for (;;) {
      if (auto frame = decoder.next()) return frame;
      const RecvResult got = socket->recv_some(buffer, sizeof buffer);
      if (got.bytes == 0) return std::nullopt;
      decoder.feed(buffer, got.bytes);
    }
  };

  Hello hello;
  hello.site_id = 6;
  hello.params_fingerprint = small_params().fingerprint();
  ASSERT_TRUE(socket->send_all(encode_frame(MsgType::kHello, hello.encode())));
  auto hello_ack = read_ack_frame();
  ASSERT_TRUE(hello_ack.has_value());
  EXPECT_EQ(hello_ack->version, kWireVersion);

  ASSERT_TRUE(socket->send_all(
      encode_frame(MsgType::kHeartbeat, Heartbeat{}.encode())));
  auto beat_ack = read_ack_frame();
  ASSERT_TRUE(beat_ack.has_value());
  EXPECT_EQ(beat_ack->type, MsgType::kAck);
  EXPECT_EQ(beat_ack->version, kWireVersion);
  const Ack ack = Ack::decode(beat_ack->payload, beat_ack->version);
  EXPECT_EQ(ack.status, AckStatus::kOk);
  EXPECT_EQ(ack.epoch, 0u);
  collector.stop();
}

// --- end-to-end epoch tracing ----------------------------------------------

/// Real agent, real collector, telemetry on: every trace dumped from the
/// collector's ring must be complete (all eight stages stamped, in order)
/// and carry a detection-freshness measurement.
TEST(ServiceTrace, CollectorTracesAreCompleteAndMonotone) {
  obs::set_enabled(true);
  const std::uint64_t freshness_before =
      obs::TraceMetrics::get().detection_freshness_ns.snapshot().count;

  Collector collector(collector_config());
  collector.start();
  SiteAgent agent(agent_config(2, collector.port()));
  agent.start();
  for (const auto& update : zipf_updates(2500, 9)) agent.ingest(update);
  EXPECT_TRUE(agent.flush(10000));
  agent.stop();

  const auto traces = collector.traces();
  ASSERT_GE(traces.size(), 4u);  // 2500 updates / 500 per epoch
  for (const auto& trace : traces) {
    EXPECT_EQ(trace.site_id, 2u);
    EXPECT_TRUE(trace.complete()) << "epoch " << trace.epoch;
    EXPECT_GT(trace.freshness_ns, 0u) << "epoch " << trace.epoch;
    EXPECT_GT(trace.updates, 0u);
    EXPECT_GT(trace.bytes, 0u);
  }

  // The SLO histogram saw every merged epoch.
  const auto freshness =
      obs::TraceMetrics::get().detection_freshness_ns.snapshot();
  EXPECT_GE(freshness.count, freshness_before + traces.size());

  // The agent kept its own (sealed/spooled/shipped) view of the epochs.
  const auto agent_traces = agent.traces();
  ASSERT_GE(agent_traces.size(), 4u);
  for (const auto& trace : agent_traces) {
    const auto sealed = trace.stamp(obs::TraceStage::kSealed);
    const auto spooled = trace.stamp(obs::TraceStage::kSpooled);
    const auto shipped = trace.stamp(obs::TraceStage::kShipped);
    EXPECT_GT(sealed, 0u);
    EXPECT_GE(spooled, sealed);
    EXPECT_GE(shipped, spooled);
  }
  collector.stop();
}

/// An idle v3 agent <-> v3 collector pair turns keepalive heartbeats into
/// RTT observations.
TEST(ServiceTrace, HeartbeatRttIsMeasuredOnIdleConnections) {
  obs::set_enabled(true);
  const std::uint64_t rtt_before =
      obs::AgentMetrics::get().heartbeat_rtt_ns.snapshot().count;

  Collector collector(collector_config());
  collector.start();
  auto config = agent_config(1, collector.port());
  config.heartbeat_interval_ms = 20;
  SiteAgent agent(config);
  agent.start();
  // One epoch to establish the connection, then idle through several
  // heartbeat intervals.
  agent.ingest(1, 2, +1);
  agent.seal_epoch();
  EXPECT_TRUE(agent.flush(5000));
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (obs::AgentMetrics::get().heartbeat_rtt_ns.snapshot().count <
             rtt_before + 2 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  agent.stop();

  const auto rtt = obs::AgentMetrics::get().heartbeat_rtt_ns.snapshot();
  EXPECT_GE(rtt.count, rtt_before + 2)
      << "no heartbeat RTT observed within the deadline";
  collector.stop();
}

}  // namespace
}  // namespace dcs::service
