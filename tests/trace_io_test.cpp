// Tests for binary and CSV trace round-trips and malformed-input handling.
#include "stream/trace_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "common/serialize.hpp"
#include "stream/generator.hpp"

namespace dcs {
namespace {

std::vector<FlowUpdate> sample_updates() {
  return {
      {100, 200, +1}, {101, 200, +1}, {100, 200, -1}, {0xffffffff, 0, +1},
  };
}

TEST(TraceIo, BinaryRoundTrip) {
  std::stringstream buffer;
  write_trace(buffer, sample_updates());
  EXPECT_EQ(read_trace(buffer), sample_updates());
}

TEST(TraceIo, BinaryEmptyStream) {
  std::stringstream buffer;
  write_trace(buffer, {});
  EXPECT_TRUE(read_trace(buffer).empty());
}

TEST(TraceIo, BinaryRejectsGarbage) {
  std::stringstream buffer("this is not a trace file");
  EXPECT_THROW(read_trace(buffer), SerializeError);
}

TEST(TraceIo, BinaryRejectsTruncation) {
  std::stringstream buffer;
  write_trace(buffer, sample_updates());
  const std::string full = buffer.str();
  std::stringstream truncated(full.substr(0, full.size() - 3));
  EXPECT_THROW(read_trace(truncated), SerializeError);
}

TEST(TraceIo, CsvRoundTrip) {
  std::stringstream buffer;
  write_trace_csv(buffer, sample_updates());
  EXPECT_EQ(read_trace_csv(buffer), sample_updates());
}

TEST(TraceIo, CsvRejectsBadDelta) {
  std::stringstream buffer("source,dest,delta\n1,2,5\n");
  EXPECT_THROW(read_trace_csv(buffer), SerializeError);
}

TEST(TraceIo, CsvEmptyInput) {
  std::stringstream buffer("");
  EXPECT_TRUE(read_trace_csv(buffer).empty());
}

TEST(TraceIo, FileRoundTrip) {
  const auto path =
      (std::filesystem::temp_directory_path() / "dcs_trace_test.bin").string();
  ZipfWorkloadConfig config;
  config.u_pairs = 5000;
  config.num_destinations = 50;
  config.churn = 1;
  const ZipfWorkload workload(config);
  write_trace_file(path, workload.updates());
  EXPECT_EQ(read_trace_file(path), workload.updates());
  std::remove(path.c_str());
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW(read_trace_file("/nonexistent/dir/trace.bin"), SerializeError);
}

}  // namespace
}  // namespace dcs
