// Tests for the Zipf distribution, the apportionment used by the workload
// generator, and the bijective32 permutation.
#include "common/zipf.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <vector>

#include "stream/generator.hpp"

namespace dcs {
namespace {

TEST(ZipfDistribution, PmfSumsToOne) {
  ZipfDistribution zipf(1000, 1.5);
  double total = 0.0;
  for (std::size_t i = 0; i < 1000; ++i) total += zipf.pmf(i);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfDistribution, PmfIsMonotoneDecreasing) {
  ZipfDistribution zipf(500, 2.0);
  for (std::size_t i = 1; i < 500; ++i)
    EXPECT_LE(zipf.pmf(i), zipf.pmf(i - 1)) << "rank " << i;
}

TEST(ZipfDistribution, ZeroSkewIsUniform) {
  ZipfDistribution zipf(100, 0.0);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_NEAR(zipf.pmf(i), 0.01, 1e-12);
}

TEST(ZipfDistribution, HigherSkewConcentratesMass) {
  ZipfDistribution mild(1000, 1.0), extreme(1000, 2.5);
  EXPECT_GT(extreme.pmf(0), mild.pmf(0));
  // Paper §6.2: at z=2.5 more than 95% of mass sits in the top 5.
  double top5 = 0.0;
  for (std::size_t i = 0; i < 5; ++i) top5 += extreme.pmf(i);
  EXPECT_GT(top5, 0.95);
}

TEST(ZipfDistribution, SamplingMatchesPmf) {
  ZipfDistribution zipf(50, 1.2);
  Xoshiro256 rng(5);
  std::vector<int> histogram(50, 0);
  constexpr int kSamples = 200'000;
  for (int i = 0; i < kSamples; ++i) ++histogram[zipf(rng)];
  for (std::size_t i = 0; i < 5; ++i) {
    const double expected = zipf.pmf(i) * kSamples;
    EXPECT_NEAR(histogram[i], expected, 0.05 * expected) << "rank " << i;
  }
}

TEST(ZipfDistribution, RejectsBadArguments) {
  EXPECT_THROW(ZipfDistribution(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ZipfDistribution(10, -0.5), std::invalid_argument);
}

TEST(ZipfDistribution, PmfOutOfRangeIsZero) {
  ZipfDistribution zipf(10, 1.0);
  EXPECT_EQ(zipf.pmf(10), 0.0);
  EXPECT_EQ(zipf.pmf(1'000'000), 0.0);
}

TEST(ZipfApportion, SumsExactly) {
  for (const std::uint64_t total : {1ull, 7ull, 1000ull, 123'457ull}) {
    for (const double skew : {0.0, 1.0, 1.5, 2.5}) {
      const auto counts = zipf_apportion(total, 100, skew);
      const std::uint64_t sum =
          std::accumulate(counts.begin(), counts.end(), std::uint64_t{0});
      EXPECT_EQ(sum, total) << "total=" << total << " skew=" << skew;
    }
  }
}

TEST(ZipfApportion, RespectsRankOrder) {
  const auto counts = zipf_apportion(100'000, 50, 1.5);
  for (std::size_t i = 1; i < counts.size(); ++i)
    EXPECT_LE(counts[i], counts[i - 1] + 1) << "rank " << i;
}

TEST(ZipfApportion, RejectsZeroParts) {
  EXPECT_THROW(zipf_apportion(10, 0, 1.0), std::invalid_argument);
}

TEST(Bijective32, IsInjectiveOnLargeSample) {
  std::set<std::uint32_t> outputs;
  for (std::uint32_t x = 0; x < 200'000; ++x) outputs.insert(bijective32(x));
  EXPECT_EQ(outputs.size(), 200'000u);
}

TEST(Bijective32, IsDeterministic) {
  for (std::uint32_t x : {0u, 1u, 12345u, 0xffffffffu})
    EXPECT_EQ(bijective32(x), bijective32(x));
}

}  // namespace
}  // namespace dcs
