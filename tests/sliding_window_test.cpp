// Tests for the sliding-window sketch: exact window semantics via epoch
// subtraction.
#include "sketch/sliding_window.hpp"

#include <gtest/gtest.h>

#include "common/random.hpp"
#include "stream/generator.hpp"

namespace dcs {
namespace {

SlidingWindowSketch::Config test_config(std::uint64_t epoch_updates,
                                        std::size_t window_epochs) {
  SlidingWindowSketch::Config config;
  config.sketch.seed = 5;
  config.sketch.buckets_per_table = 64;
  config.epoch_updates = epoch_updates;
  config.window_epochs = window_epochs;
  return config;
}

TEST(SlidingWindow, RejectsBadConfig) {
  auto config = test_config(0, 4);
  EXPECT_THROW(SlidingWindowSketch{config}, std::invalid_argument);
  config = test_config(10, 0);
  EXPECT_THROW(SlidingWindowSketch{config}, std::invalid_argument);
}

TEST(SlidingWindow, WindowEqualsSketchOfWindowUpdates) {
  // After any number of updates, the window sketch must be bit-identical to
  // a plain sketch fed only the updates inside the window.
  const auto config = test_config(100, 4);
  SlidingWindowSketch window(config);

  Xoshiro256 rng(3);
  std::vector<FlowUpdate> all;
  for (int i = 0; i < 1050; ++i) {
    const FlowUpdate u{static_cast<Addr>(rng()),
                       static_cast<Addr>(rng.bounded(32)), +1};
    all.push_back(u);
    window.update(u.dest, u.source, u.delta);
  }

  // Window covers: the current partial epoch plus the last W completed
  // epochs. At 1050 updates with epoch 100 and W=4: completed epochs 6-9
  // plus the partial epoch = updates [600, 1050).
  DistinctCountSketch expected(config.sketch);
  for (std::size_t i = 600; i < all.size(); ++i)
    expected.update(all[i].dest, all[i].source, all[i].delta);
  EXPECT_TRUE(window.window() == expected);
  EXPECT_EQ(window.completed_epochs_held(), 4u);
}

TEST(SlidingWindow, OldTalkersExpire) {
  const auto config = test_config(1000, 2);  // window = current + 2 epochs
  SlidingWindowSketch window(config);

  // Epoch 0: destination 7 gets 500 distinct sources.
  for (Addr s = 0; s < 500; ++s) window.update(7, s, +1);
  {
    const auto top = window.top_k(1).entries;
    ASSERT_EQ(top.size(), 1u);
    EXPECT_EQ(top[0].group, 7u);
  }
  // Epochs 1-4: quiet filler traffic to age 7 out of the window (the window
  // holds the last 2 completed epochs plus the partial one, so epoch 0 must
  // fall at least 3 completed epochs behind the write position).
  for (int epoch = 0; epoch < 4; ++epoch)
    for (Addr s = 0; s < 1000; ++s)
      window.update(100 + static_cast<Addr>(epoch), 10'000 + s, +1);

  EXPECT_EQ(window.window().estimate_frequency(7), 0u);
}

TEST(SlidingWindow, RecentTalkerDominates) {
  const auto config = test_config(500, 3);  // window = current + 3 completed
  SlidingWindowSketch window(config);
  // Old heavy destination (epochs 0-3)...
  for (Addr s = 0; s < 2000; ++s) window.update(1, s, +1);
  // ...aged out by three epochs of scattered filler (epochs 4-6)...
  for (Addr s = 0; s < 1500; ++s)
    window.update(50 + (s % 20), 100'000 + s, +1);
  // ...then a recent surge by another destination in the current epoch.
  for (Addr s = 0; s < 499; ++s) window.update(2, s, +1);
  const auto top = window.top_k(1).entries;
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].group, 2u) << "recent surge should outrank expired history";
  EXPECT_EQ(window.window().estimate_frequency(1), 0u);
}

TEST(SlidingWindow, DeletionsInsideWindowCancel) {
  const auto config = test_config(1000, 4);
  SlidingWindowSketch window(config);
  for (Addr s = 0; s < 300; ++s) window.update(9, s, +1);
  for (Addr s = 0; s < 300; ++s) window.update(9, s, -1);
  EXPECT_TRUE(window.top_k(1).entries.empty());
}

TEST(SlidingWindow, HoldsBoundedEpochCount) {
  const auto config = test_config(10, 5);
  SlidingWindowSketch window(config);
  Xoshiro256 rng(9);
  for (int i = 0; i < 1000; ++i)
    window.update(static_cast<Addr>(rng.bounded(16)), static_cast<Addr>(rng()),
                  +1);
  EXPECT_LE(window.completed_epochs_held(), 5u);  // window_epochs
  EXPECT_EQ(window.updates_ingested(), 1000u);
}

TEST(SlidingWindow, WindowOfOneEpochNeverEmptiesAtBoundary) {
  // Regression for the eviction off-by-one: with W=1, rolling an epoch used
  // to evict the epoch just completed, leaving the window covering only the
  // (empty) partial epoch. "Last W epochs" means the window right after a
  // boundary still holds one full epoch of history.
  const auto config = test_config(10, 1);
  SlidingWindowSketch window(config);
  for (Addr s = 0; s < 10; ++s) window.update(3, s, +1);  // exactly epoch 0
  EXPECT_EQ(window.completed_epochs_held(), 1u);
  DistinctCountSketch expected(config.sketch);
  for (Addr s = 0; s < 10; ++s) expected.update(3, s, +1);
  EXPECT_TRUE(window.window() == expected) << "epoch 0 evicted too early";

  // Finish epoch 1: epoch 0 now leaves the window.
  for (Addr s = 0; s < 10; ++s) window.update(4, 100 + s, +1);
  EXPECT_EQ(window.completed_epochs_held(), 1u);
  DistinctCountSketch second(config.sketch);
  for (Addr s = 0; s < 10; ++s) second.update(4, 100 + s, +1);
  EXPECT_TRUE(window.window() == second);
  EXPECT_EQ(window.window().estimate_frequency(3), 0u);
}

TEST(SlidingWindow, WindowOfTwoEpochsEvictsExactlyAtBoundary) {
  const auto config = test_config(10, 2);
  SlidingWindowSketch window(config);
  // Three full epochs with disjoint destinations 0, 1, 2.
  for (Addr epoch = 0; epoch < 3; ++epoch)
    for (Addr s = 0; s < 10; ++s)
      window.update(epoch, epoch * 100 + s, +1);
  // Window = completed epochs 1-2 (epoch 0 evicted at the last boundary).
  EXPECT_EQ(window.completed_epochs_held(), 2u);
  EXPECT_EQ(window.window().estimate_frequency(0), 0u);
  DistinctCountSketch expected(config.sketch);
  for (Addr epoch = 1; epoch < 3; ++epoch)
    for (Addr s = 0; s < 10; ++s)
      expected.update(epoch, epoch * 100 + s, +1);
  EXPECT_TRUE(window.window() == expected);
}

// Property sweep: at a random checkpoint of a random insert/delete stream,
// the window sketch must equal a plain sketch of exactly the window's
// updates — for several (epoch, window) shapes and seeds.
using WindowShape = std::tuple<std::uint64_t, std::size_t, std::uint64_t>;

class SlidingWindowProperty : public ::testing::TestWithParam<WindowShape> {};

TEST_P(SlidingWindowProperty, WindowIsExactAtRandomCheckpoint) {
  const auto [epoch_updates, window_epochs, seed] = GetParam();
  SlidingWindowSketch::Config config;
  config.sketch.seed = 5;
  config.sketch.buckets_per_table = 32;
  config.epoch_updates = epoch_updates;
  config.window_epochs = window_epochs;
  SlidingWindowSketch window(config);

  Xoshiro256 rng(seed);
  const std::size_t total = 500 + rng.bounded(2000);
  std::vector<FlowUpdate> all;
  std::vector<std::pair<Addr, Addr>> live;
  for (std::size_t i = 0; i < total; ++i) {
    FlowUpdate u;
    if (!live.empty() && rng.bounded(4) == 0) {
      const std::size_t pick = rng.bounded(live.size());
      u = {live[pick].second, live[pick].first, -1};
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    } else {
      u = {static_cast<Addr>(rng()), static_cast<Addr>(rng.bounded(16)), +1};
      live.emplace_back(u.dest, u.source);
    }
    all.push_back(u);
    window.update(u.dest, u.source, u.delta);
  }

  // Window start: the current partial epoch plus the last `window_epochs`
  // completed epochs actually held.
  const std::size_t completed = total / epoch_updates;
  const std::size_t held = std::min<std::size_t>(completed, window_epochs);
  const std::size_t window_start = (completed - held) * epoch_updates;

  DistinctCountSketch expected(config.sketch);
  for (std::size_t i = window_start; i < all.size(); ++i)
    expected.update(all[i].dest, all[i].source, all[i].delta);
  EXPECT_TRUE(window.window() == expected)
      << "epoch=" << epoch_updates << " W=" << window_epochs
      << " seed=" << seed << " total=" << total;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SlidingWindowProperty,
    ::testing::Combine(::testing::Values<std::uint64_t>(37, 128, 500),
                       ::testing::Values<std::size_t>(1, 2, 5),
                       ::testing::Values<std::uint64_t>(1, 2, 3)));

TEST(SlidingWindow, MemoryScalesWithWindowEpochs) {
  const auto narrow_config = test_config(100, 2);
  const auto wide_config = test_config(100, 8);
  SlidingWindowSketch narrow(narrow_config), wide(wide_config);
  Xoshiro256 rng(4);
  for (int i = 0; i < 2000; ++i) {
    const Addr dest = static_cast<Addr>(rng.bounded(16));
    const Addr source = static_cast<Addr>(rng());
    narrow.update(dest, source, +1);
    wide.update(dest, source, +1);
  }
  EXPECT_GT(wide.memory_bytes(), narrow.memory_bytes());
}

}  // namespace
}  // namespace dcs
