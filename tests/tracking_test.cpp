// Tests for the Tracking Distinct-Count Sketch: incremental-state invariants,
// equivalence with the basic estimator, merge/rebuild, serialization.
#include "sketch/tracking_dcs.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "common/random.hpp"
#include "stream/generator.hpp"

namespace dcs {
namespace {

DcsParams small_params(std::uint64_t seed = 1) {
  DcsParams params;
  params.num_tables = 3;
  params.buckets_per_table = 64;
  params.seed = seed;
  return params;
}

TEST(Tracking, EmptyAnswersEmpty) {
  TrackingDcs tracker(small_params());
  EXPECT_TRUE(tracker.top_k(5).entries.empty());
  EXPECT_EQ(tracker.estimate_distinct_pairs(), 0u);
  EXPECT_TRUE(tracker.check_invariants());
}

TEST(Tracking, SmallStreamIsExact) {
  TrackingDcs tracker(small_params());
  for (Addr dest = 1; dest <= 4; ++dest)
    for (Addr source = 0; source < dest; ++source)
      tracker.update(dest, 500 + source, +1);
  const TopKResult result = tracker.top_k(4);
  ASSERT_EQ(result.entries.size(), 4u);
  EXPECT_EQ(result.entries[0], (TopKEntry{4, 4}));
  EXPECT_EQ(result.entries[1], (TopKEntry{3, 3}));
  EXPECT_EQ(result.entries[2], (TopKEntry{2, 2}));
  EXPECT_EQ(result.entries[3], (TopKEntry{1, 1}));
  EXPECT_TRUE(tracker.check_invariants());
}

TEST(Tracking, DeleteRemovesFromAnswer) {
  TrackingDcs tracker(small_params());
  tracker.update(1, 10, +1);
  tracker.update(1, 11, +1);
  tracker.update(2, 20, +1);
  tracker.update(1, 11, -1);
  const TopKResult result = tracker.top_k(2);
  ASSERT_EQ(result.entries.size(), 2u);
  EXPECT_EQ(result.entries[0], (TopKEntry{1, 1}));
  EXPECT_EQ(result.entries[1], (TopKEntry{2, 1}));
  EXPECT_TRUE(tracker.check_invariants());
}

TEST(Tracking, KeyBitsBoundsAreEnforced) {
  DcsParams params = small_params();
  params.key_bits = 16;
  TrackingDcs tracker(params);
  EXPECT_NO_THROW(tracker.update_key(0xffff, +1));
  EXPECT_THROW(tracker.update_key(0x10000, +1), std::invalid_argument);
}

TEST(Tracking, MatchesBasicEstimatorOnIdenticalState) {
  // TrackTopk must return exactly what BaseTopk computes from scratch on the
  // same counters — the paper's two estimators answer the same query.
  const DcsParams params = small_params(42);
  TrackingDcs tracker(params);
  DistinctCountSketch basic(params);

  Xoshiro256 rng(17);
  std::vector<std::pair<Addr, Addr>> live;
  for (int step = 0; step < 20'000; ++step) {
    if (!live.empty() && rng.bounded(4) == 0) {
      const std::size_t pick = rng.bounded(live.size());
      const auto [dest, source] = live[pick];
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
      tracker.update(dest, source, -1);
      basic.update(dest, source, -1);
    } else {
      const Addr dest = static_cast<Addr>(rng.bounded(200));
      const Addr source = static_cast<Addr>(rng());
      live.emplace_back(dest, source);
      tracker.update(dest, source, +1);
      basic.update(dest, source, +1);
    }
    if (step % 2500 == 0) {
      const TopKResult from_tracking = tracker.top_k(10);
      const TopKResult from_basic = basic.top_k(10);
      ASSERT_EQ(from_tracking.entries, from_basic.entries) << "step " << step;
      ASSERT_EQ(from_tracking.inference_level, from_basic.inference_level);
      ASSERT_EQ(from_tracking.sample_size, from_basic.sample_size);
    }
  }
  EXPECT_TRUE(tracker.check_invariants());
}

TEST(Tracking, InvariantsHoldUnderRandomChurn) {
  TrackingDcs tracker(small_params(7));
  Xoshiro256 rng(29);
  std::vector<std::pair<Addr, Addr>> live;
  for (int step = 0; step < 5000; ++step) {
    if (!live.empty() && rng.bounded(3) == 0) {
      const std::size_t pick = rng.bounded(live.size());
      const auto [dest, source] = live[pick];
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
      tracker.update(dest, source, -1);
    } else {
      const Addr dest = static_cast<Addr>(rng.bounded(64));
      const Addr source = static_cast<Addr>(rng());
      live.emplace_back(dest, source);
      tracker.update(dest, source, +1);
    }
  }
  EXPECT_TRUE(tracker.check_invariants());
}

TEST(Tracking, FullDrainLeavesEmptyTrackingState) {
  TrackingDcs tracker(small_params(3));
  std::vector<std::pair<Addr, Addr>> pairs;
  Xoshiro256 rng(31);
  for (int i = 0; i < 1000; ++i) {
    pairs.emplace_back(static_cast<Addr>(rng.bounded(32)),
                       static_cast<Addr>(rng()));
    tracker.update(pairs.back().first, pairs.back().second, +1);
  }
  for (const auto& [dest, source] : pairs) tracker.update(dest, source, -1);
  EXPECT_TRUE(tracker.top_k(5).entries.empty());
  EXPECT_EQ(tracker.estimate_distinct_pairs(), 0u);
  for (int level = 0; level <= tracker.params().max_level; ++level) {
    EXPECT_EQ(tracker.num_singletons(level), 0u) << "level " << level;
    EXPECT_TRUE(tracker.heap(level).empty()) << "level " << level;
  }
  EXPECT_TRUE(tracker.check_invariants());
}

TEST(Tracking, NumSingletonsMatchesLevelSamples) {
  TrackingDcs tracker(small_params(11));
  Xoshiro256 rng(13);
  for (int i = 0; i < 2000; ++i)
    tracker.update(static_cast<Addr>(rng.bounded(100)),
                   static_cast<Addr>(rng()), +1);
  for (int level = 0; level <= tracker.params().max_level; ++level) {
    EXPECT_EQ(tracker.num_singletons(level),
              tracker.sketch().level_sample(level).size())
        << "level " << level;
  }
}

TEST(Tracking, MergeEqualsUnionStream) {
  const DcsParams params = small_params(88);
  TrackingDcs left(params), right(params), whole(params);
  Xoshiro256 rng(23);
  for (int i = 0; i < 4000; ++i) {
    const Addr dest = static_cast<Addr>(rng.bounded(128));
    const Addr source = static_cast<Addr>(rng());
    whole.update(dest, source, +1);
    (i % 2 == 0 ? left : right).update(dest, source, +1);
  }
  left.merge(right);
  EXPECT_TRUE(left.check_invariants());
  EXPECT_EQ(left.top_k(10).entries, whole.top_k(10).entries);
}

TEST(Tracking, ConstructFromBasicSketch) {
  const DcsParams params = small_params(66);
  DistinctCountSketch basic(params);
  Xoshiro256 rng(19);
  for (int i = 0; i < 3000; ++i)
    basic.update(static_cast<Addr>(rng.bounded(64)), static_cast<Addr>(rng()),
                 +1);
  const TrackingDcs tracker(basic);
  EXPECT_TRUE(tracker.check_invariants());
  EXPECT_EQ(tracker.top_k(8).entries, basic.top_k(8).entries);
}

TEST(Tracking, SerializeRoundTripPreservesAnswers) {
  TrackingDcs tracker(small_params(99));
  Xoshiro256 rng(37);
  for (int i = 0; i < 3000; ++i)
    tracker.update(static_cast<Addr>(rng.bounded(64)), static_cast<Addr>(rng()),
                   rng.bounded(8) == 0 ? -1 : +1);

  std::stringstream buffer;
  {
    BinaryWriter writer(buffer);
    tracker.serialize(writer);
  }
  BinaryReader reader(buffer);
  const TrackingDcs restored = TrackingDcs::deserialize(reader);
  EXPECT_TRUE(restored.check_invariants());
  EXPECT_EQ(tracker.top_k(10).entries, restored.top_k(10).entries);
}

TEST(Tracking, ContinuedUpdatesAfterRebuildStayConsistent) {
  // rebuild() must leave state that further incremental updates keep exact.
  const DcsParams params = small_params(3);
  TrackingDcs tracker(params);
  Xoshiro256 rng(41);
  for (int i = 0; i < 1000; ++i)
    tracker.update(static_cast<Addr>(rng.bounded(32)), static_cast<Addr>(rng()),
                   +1);
  tracker.rebuild();
  for (int i = 0; i < 1000; ++i)
    tracker.update(static_cast<Addr>(rng.bounded(32)), static_cast<Addr>(rng()),
                   +1);
  EXPECT_TRUE(tracker.check_invariants());
}

TEST(Tracking, GroupsAboveMatchesBasic) {
  const DcsParams params = small_params(12);
  TrackingDcs tracker(params);
  DistinctCountSketch basic(params);
  ZipfWorkloadConfig config;
  config.u_pairs = 20'000;
  config.num_destinations = 400;
  config.skew = 1.5;
  const ZipfWorkload workload(config);
  for (const FlowUpdate& u : workload.updates()) {
    tracker.update(u.dest, u.source, u.delta);
    basic.update(u.dest, u.source, u.delta);
  }
  const auto top = tracker.top_k(5);
  ASSERT_FALSE(top.entries.empty());
  const std::uint64_t tau = top.entries.back().estimate;
  EXPECT_EQ(tracker.groups_above(tau), basic.groups_above(tau));
}

}  // namespace
}  // namespace dcs
