// Tests for the point-query and sketch-subtraction extensions.
#include <gtest/gtest.h>

#include "baselines/exact_tracker.hpp"
#include "common/random.hpp"
#include "sketch/distinct_count_sketch.hpp"
#include "sketch/tracking_dcs.hpp"
#include "stream/generator.hpp"

namespace dcs {
namespace {

DcsParams small_params(std::uint64_t seed = 1) {
  DcsParams params;
  params.num_tables = 3;
  params.buckets_per_table = 128;
  params.seed = seed;
  return params;
}

TEST(PointQuery, ExactOnSmallStreams) {
  DistinctCountSketch basic(small_params());
  TrackingDcs tracking(small_params());
  for (Addr source = 0; source < 7; ++source) {
    basic.update(1, source, +1);
    tracking.update(1, source, +1);
  }
  basic.update(2, 100, +1);
  tracking.update(2, 100, +1);
  EXPECT_EQ(basic.estimate_frequency(1), 7u);
  EXPECT_EQ(tracking.estimate_frequency(1), 7u);
  EXPECT_EQ(basic.estimate_frequency(2), 1u);
  EXPECT_EQ(basic.estimate_frequency(999), 0u);
  EXPECT_EQ(tracking.estimate_frequency(999), 0u);
}

TEST(PointQuery, BasicAndTrackingAgree) {
  const DcsParams params = small_params(7);
  DistinctCountSketch basic(params);
  TrackingDcs tracking(params);
  ZipfWorkloadConfig config;
  config.u_pairs = 50'000;
  config.num_destinations = 1000;
  config.skew = 1.5;
  const ZipfWorkload workload(config);
  for (const FlowUpdate& u : workload.updates()) {
    basic.update(u.dest, u.source, u.delta);
    tracking.update(u.dest, u.source, u.delta);
  }
  for (const DestFrequency& truth : workload.true_top_k(10))
    EXPECT_EQ(basic.estimate_frequency(truth.dest),
              tracking.estimate_frequency(truth.dest))
        << "dest " << truth.dest;
}

TEST(PointQuery, TopDestinationWithinRelativeError) {
  const DcsParams params = small_params(3);
  ZipfWorkloadConfig config;
  config.u_pairs = 100'000;
  config.num_destinations = 1000;
  config.skew = 1.5;
  const ZipfWorkload workload(config);
  TrackingDcs tracking(params);
  for (const FlowUpdate& u : workload.updates())
    tracking.update(u.dest, u.source, u.delta);
  const DestFrequency top = workload.true_top_k(1)[0];
  const double estimate =
      static_cast<double>(tracking.estimate_frequency(top.dest));
  EXPECT_NEAR(estimate, static_cast<double>(top.frequency),
              0.5 * static_cast<double>(top.frequency));
}

TEST(Subtract, RemovesEarlierEpochExactly) {
  // sketch(epoch1+epoch2) - sketch(epoch1) == sketch(epoch2), bit for bit.
  const DcsParams params = small_params(11);
  DistinctCountSketch both(params), first(params), second(params);
  Xoshiro256 rng(5);
  for (int i = 0; i < 5000; ++i) {
    const Addr dest = static_cast<Addr>(rng.bounded(64));
    const Addr source = static_cast<Addr>(rng());
    const bool epoch1 = i < 2500;
    both.update(dest, source, +1);
    (epoch1 ? first : second).update(dest, source, +1);
  }
  both.subtract(first);
  EXPECT_TRUE(both == second);
}

TEST(Subtract, HeavyChangeDetectionFindsNewTalker) {
  // Epoch 1: destination 5 dominates. Epoch 2: destination 9 suddenly gains
  // the most NEW distinct sources. The difference sketch must rank 9 first
  // even though 5 is still the overall top destination.
  const DcsParams params = small_params(13);
  DistinctCountSketch sketch(params);

  for (Addr source = 0; source < 5000; ++source) sketch.update(5, source, +1);
  for (Addr source = 0; source < 500; ++source) sketch.update(9, source, +1);

  // Snapshot at the epoch boundary.
  const DistinctCountSketch snapshot = sketch;

  for (Addr source = 5000; source < 5400; ++source) sketch.update(5, source, +1);
  for (Addr source = 500; source < 4500; ++source) sketch.update(9, source, +1);

  // Whole-stream top-1 is still 5...
  EXPECT_EQ(sketch.top_k(1).entries[0].group, 5u);

  // ...but the epoch difference is dominated by 9.
  DistinctCountSketch difference = sketch;
  difference.subtract(snapshot);
  const auto changed = difference.top_k(2).entries;
  ASSERT_GE(changed.size(), 1u);
  EXPECT_EQ(changed[0].group, 9u);
}

TEST(Subtract, MismatchedParamsThrow) {
  DistinctCountSketch a(small_params(1)), b(small_params(2));
  EXPECT_THROW(a.subtract(b), std::invalid_argument);
}

TEST(Subtract, SelfSubtractionYieldsEmptySketch) {
  const DcsParams params = small_params(17);
  DistinctCountSketch sketch(params);
  Xoshiro256 rng(2);
  for (int i = 0; i < 1000; ++i)
    sketch.update(static_cast<Addr>(rng.bounded(32)), static_cast<Addr>(rng()),
                  +1);
  DistinctCountSketch copy = sketch;
  copy.subtract(sketch);
  EXPECT_TRUE(copy == DistinctCountSketch(params));
  EXPECT_TRUE(copy.top_k(5).entries.empty());
}

}  // namespace
}  // namespace dcs
