// Quickstart: track the top-k destinations by distinct half-open sources
// over a stream of flow updates with insertions AND deletions.
//
//   build/examples/quickstart
#include <cstdio>

#include "sketch/tracking_dcs.hpp"
#include "stream/generator.hpp"

int main() {
  using namespace dcs;

  // 1. Configure the sketch. r and s are the paper's defaults; the seed makes
  //    the run reproducible.
  DcsParams params;
  params.num_tables = 3;          // r: independent second-level hash tables
  params.buckets_per_table = 128; // s: buckets per table
  params.seed = 42;

  // 2. The tracking variant answers top-k queries in O(k log k) at any point
  //    in the stream.
  TrackingDcs tracker(params);

  // 3. Stream in flow updates. Here: a synthetic workload of 200k distinct
  //    (source, dest) pairs over 10k destinations, Zipf skew 1.5.
  ZipfWorkloadConfig workload_config;
  workload_config.u_pairs = 200'000;
  workload_config.num_destinations = 10'000;
  workload_config.skew = 1.5;
  workload_config.churn = 1;  // every pair also inserted+deleted once more
  const ZipfWorkload workload(workload_config);

  for (const FlowUpdate& update : workload.updates())
    tracker.update(update.dest, update.source, update.delta);

  // 4. Query: top-5 destinations by estimated distinct-source frequency.
  const TopKResult result = tracker.top_k(5);
  std::printf("top-5 destinations (sample of %llu pairs at level %d):\n",
              static_cast<unsigned long long>(result.sample_size),
              result.inference_level);
  const auto truth = workload.true_top_k(5);
  for (std::size_t i = 0; i < result.entries.size(); ++i) {
    const TopKEntry& entry = result.entries[i];
    std::printf("  #%zu dest=%08x estimated=%llu", i + 1, entry.group,
                static_cast<unsigned long long>(entry.estimate));
    if (i < truth.size())
      std::printf("   (true #%zu: dest=%08x freq=%llu)", i + 1, truth[i].dest,
                  static_cast<unsigned long long>(truth[i].frequency));
    std::printf("\n");
  }

  std::printf("sketch memory: %.1f KiB\n",
              static_cast<double>(tracker.memory_bytes()) / 1024.0);
  return 0;
}
