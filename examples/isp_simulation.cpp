// Full-stack demonstration: an event-driven ISP simulation in which the
// attack dynamics *emerge* from protocol behavior, monitored exactly as the
// paper's Fig. 1 prescribes.
//
//   hosts (clients / servers / zombies)
//     -> packets routed hop-by-hop over a core-ring topology
//     -> per-edge-router NetFlow exporters (ingress taps)
//     -> per-router Distinct-Count Sketches (one seed, shared params)
//     -> central collector: linear merge -> TrackingDcs -> top-k / alerts
//
//   build/examples/isp_simulation [--zombies-sources 15000] [--clients 8000]
#include <cstdio>
#include <memory>
#include <vector>

#include "common/options.hpp"
#include "distributed/sharded_monitor.hpp"
#include "net/exporter.hpp"
#include "sim/agents.hpp"
#include "sim/simulator.hpp"
#include "sim/topology.hpp"

int main(int argc, char** argv) {
  using namespace dcs;
  using namespace dcs::sim;
  const Options options(argc, argv);
  const auto spoofed_sources = static_cast<std::uint64_t>(
      options.integer("zombies-sources", 15'000));
  const auto num_clients =
      static_cast<std::uint64_t>(options.integer("clients", 8000));

  // --- The network: 6 core routers in a ring, 6 edge routers. -------------
  Topology topology;
  const auto edges = make_isp_topology(topology, 6);

  constexpr Addr kVictim = 0x0a0000fe;        // server on edge 0
  constexpr Addr kPopularSite = 0x0a000001;   // server on edge 1
  topology.attach_host(kVictim, edges[0]);
  topology.attach_host(kPopularSite, edges[1]);

  // Legitimate clients spread across edges 2-5.
  std::vector<Addr> clients;
  for (std::uint64_t i = 0; i < num_clients; ++i) {
    const Addr client = 0xc0a80000 + static_cast<Addr>(i);
    topology.attach_host(client, edges[2 + (i % 4)]);
    clients.push_back(client);
  }

  Simulator simulator(std::move(topology));

  // --- Behaviors. ----------------------------------------------------------
  auto victim_server = std::make_unique<ServerBehavior>(
      ServerBehavior::Config{.address = kVictim, .backlog_limit = 4096});
  auto* victim_ptr = victim_server.get();
  simulator.set_behavior(kVictim, std::move(victim_server));

  auto popular_server = std::make_unique<ServerBehavior>(
      ServerBehavior::Config{.address = kPopularSite});
  auto* popular_ptr = popular_server.get();
  simulator.set_behavior(kPopularSite, std::move(popular_server));

  for (const Addr client : clients)
    simulator.set_behavior(client, std::make_unique<ClientBehavior>(
                                       ClientBehavior::Config{.address = client}));

  // --- Monitoring: one exporter + sketch per edge router. ------------------
  DcsParams params;
  params.seed = 2026;  // all routers share parameters and seed
  ShardedMonitor monitors(params, edges.size());
  std::vector<std::unique_ptr<FlowUpdateExporter>> exporters;
  for (std::size_t i = 0; i < edges.size(); ++i) {
    exporters.push_back(std::make_unique<FlowUpdateExporter>(5000));
    FlowUpdateExporter* exporter = exporters.back().get();
    simulator.add_ingress_tap(
        edges[i], [exporter, &monitors, i](RouterId, std::uint64_t,
                                           const Packet& packet) {
          exporter->observe(packet, [&monitors, i](const FlowUpdate& update) {
            monitors.update_at(i, update.dest, update.source, update.delta);
          });
        });
  }

  // --- Traffic. -------------------------------------------------------------
  Xoshiro256 rng(7);
  // Legitimate load on the popular site throughout [0, 100k).
  for (std::uint64_t s = 0; s < num_clients; ++s)
    launch_session(simulator, rng.bounded(100'000),
                   clients[s % clients.size()], kPopularSite);
  // Zombies at edges 4 and 5 flood the victim from tick 60k.
  launch_spoofed_flood(simulator, edges[4], kVictim, 60'000, 25'000,
                       spoofed_sources / 2, 0xabcd, rng);
  launch_spoofed_flood(simulator, edges[5], kVictim, 60'000, 25'000,
                       spoofed_sources - spoofed_sources / 2, 0x1234, rng);

  simulator.run();

  // --- Results. ---------------------------------------------------------------
  const SimStats& stats = simulator.stats();
  std::printf("simulation: %llu packets sent, %llu delivered, %llu black-holed, %llu hops\n",
              static_cast<unsigned long long>(stats.packets_sent),
              static_cast<unsigned long long>(stats.packets_delivered),
              static_cast<unsigned long long>(stats.packets_dropped),
              static_cast<unsigned long long>(stats.hops_traversed));
  std::printf("victim server: %zu half-open, %llu SYNs rejected (backlog full)\n",
              victim_ptr->half_open(),
              static_cast<unsigned long long>(victim_ptr->rejected_syns()));
  std::printf("popular site:  %zu half-open, %llu established\n\n",
              popular_ptr->half_open(),
              static_cast<unsigned long long>(popular_ptr->established()));

  const TrackingDcs collected = monitors.collect_tracking();
  std::printf("collector top-3 by distinct half-open sources:\n");
  for (const TopKEntry& e : collected.top_k(3).entries) {
    const char* tag = e.group == kVictim        ? " <- the victim"
                      : e.group == kPopularSite ? " (popular site)"
                                                : "";
    std::printf("  dest=%08x ~%llu%s\n", e.group,
                static_cast<unsigned long long>(e.estimate), tag);
  }
  std::printf("total monitoring state across %zu routers: %.1f KiB\n",
              monitors.num_shards(),
              static_cast<double>(monitors.memory_bytes()) / 1024.0);

  const auto top = collected.top_k(1).entries;
  const bool correct = !top.empty() && top[0].group == kVictim;
  std::printf("\nverdict: %s\n", correct
                                     ? "victim correctly identified at the collector"
                                     : "FAILED to identify the victim");
  return correct ? 0 : 1;
}
