// Attack-onset detection with epoch differencing and sliding windows.
//
// A persistently-busy destination dominates the cumulative top-k, so a new
// attack on a smaller victim can hide below it. Two linearity-powered views
// fix that:
//   * EpochChangeDetector — per-epoch sketch differences rank destinations
//     by NEW distinct sources gained this epoch (onset signal);
//   * SlidingWindowSketch — ranks by distinct sources within the last W
//     epochs only, so stale history ages out.
//
//   build/examples/attack_onset
#include <algorithm>
#include <cstdio>

#include "detection/epoch_change.hpp"
#include "net/exporter.hpp"
#include "net/scenarios.hpp"
#include "sketch/sliding_window.hpp"

int main() {
  using namespace dcs;

  // A popular service has been busy forever; the attack starts late and is
  // smaller than the service's accumulated history.
  constexpr Addr kBusyService = 0x0a000001;
  constexpr Addr kVictim = 0x0a0000fe;

  Timeline timeline(321);
  // Busy service: 30k distinct clients early in the run whose handshakes
  // never complete within it (deep backlog) — a persistently-huge cumulative
  // entry that a smaller fresh attack must not hide behind.
  {
    FlashCrowdConfig steady;
    steady.target = kBusyService;
    steady.clients = 30'000;
    steady.start_tick = 0;
    steady.duration_ticks = 60'000;
    steady.handshake_delay = 200'000;  // completions land after the run ends
    add_flash_crowd(timeline, steady);
  }
  // The attack: 8k spoofed sources in a short window at the very end.
  SynFloodConfig flood;
  flood.victim = kVictim;
  flood.spoofed_sources = 8000;
  flood.start_tick = 80'000;
  flood.duration_ticks = 15'000;
  add_syn_flood(timeline, flood);

  // Observe only the first 100k ticks: the backlogged service's completions
  // (scheduled at tick 200k+) never arrive within the monitoring horizon.
  auto packets = timeline.finalize();
  const auto horizon = std::partition_point(
      packets.begin(), packets.end(),
      [](const Packet& p) { return p.timestamp < 100'000; });
  packets.erase(horizon, packets.end());

  FlowUpdateExporter exporter;
  const auto updates = exporter.run(packets);

  EpochChangeDetector::Config change_config;
  change_config.sketch.seed = 17;
  change_config.epoch_updates = 8192;
  change_config.top_k = 3;
  EpochChangeDetector change(change_config);

  SlidingWindowSketch::Config window_config;
  window_config.sketch.seed = 17;
  window_config.epoch_updates = 8192;
  window_config.window_epochs = 2;  // current epoch + one completed
  SlidingWindowSketch window(window_config);

  DistinctCountSketch cumulative(change_config.sketch);
  for (const FlowUpdate& u : updates) {
    change.update(u.dest, u.source, u.delta);
    window.update(u.dest, u.source, u.delta);
    cumulative.update(u.dest, u.source, u.delta);
  }
  change.close_epoch();

  const auto tag = [&](Addr a) {
    return a == kVictim        ? " <- the victim"
           : a == kBusyService ? " (busy service)"
                               : "";
  };

  std::printf("cumulative top-2 (whole history):\n");
  for (const TopKEntry& e : cumulative.top_k(2).entries)
    std::printf("  dest=%08x ~%llu%s\n", e.group,
                static_cast<unsigned long long>(e.estimate), tag(e.group));

  std::printf("\nsliding window top-2 (last %zu epochs):\n",
              window_config.window_epochs);
  for (const TopKEntry& e : window.top_k(2).entries)
    std::printf("  dest=%08x ~%llu%s\n", e.group,
                static_cast<unsigned long long>(e.estimate), tag(e.group));

  std::printf("\nper-epoch change reports (top gainer per epoch):\n");
  bool onset_flagged = false;
  for (const auto& report : change.reports()) {
    if (report.top_changes.empty()) continue;
    const TopKEntry& top = report.top_changes[0];
    std::printf("  epoch %2llu: dest=%08x gained ~%llu new sources%s\n",
                static_cast<unsigned long long>(report.epoch), top.group,
                static_cast<unsigned long long>(top.estimate), tag(top.group));
    onset_flagged |= top.group == kVictim;
  }

  std::printf("\nonset flagged by epoch differencing: %s\n",
              onset_flagged ? "yes" : "NO");
  return onset_flagged ? 0 : 1;
}
