// SYN-flood detection end to end: simulated ISP edge traffic -> NetFlow-style
// exporter -> DdosMonitor (Tracking Distinct-Count Sketch + baselines).
//
//   build/examples/syn_flood_monitor [--flood 20000] [--sessions 10000]
//                                    [--metrics-out metrics.prom]
//                                    [--metrics-format prom|json]
//                                    [--alerts-out alerts.json]
//
// The run prints every alert the monitor raises (as structured event
// records); the expected outcome is a single RAISED alert naming the flood
// victim once the attack window opens, followed by no false alarms on
// background destinations. --metrics-out dumps a runtime-telemetry snapshot
// after every check epoch and at exit; --alerts-out writes the typed alert
// event log as JSON.
#include <cstdio>

#include "common/options.hpp"
#include "detection/alert_log.hpp"
#include "detection/ddos_monitor.hpp"
#include "net/exporter.hpp"
#include "net/scenarios.hpp"
#include "obs/export.hpp"

int main(int argc, char** argv) {
  using namespace dcs;
  const Options options(argc, argv);

  // 1. Simulate an ISP edge: steady legitimate traffic, then a SYN flood
  //    from spoofed sources against one victim.
  Timeline timeline(2024);
  BackgroundTrafficConfig background;
  background.sessions =
      static_cast<std::uint64_t>(options.integer("sessions", 10'000));
  add_background_traffic(timeline, background);

  SynFloodConfig flood;
  flood.spoofed_sources =
      static_cast<std::uint64_t>(options.integer("flood", 20'000));
  flood.resend_factor = 2;  // SYN retransmissions: volume without new sources
  add_syn_flood(timeline, flood);

  // 2. The exporter turns TCP handshake state into (source, dest, ±1)
  //    flow updates: SYN opens a half-open entry (+1), the client's ACK
  //    completes it (-1).
  FlowUpdateExporter exporter;
  const auto updates = exporter.run(timeline.finalize());
  std::printf("simulated %zu flow updates, %zu pairs still half-open\n",
              updates.size(), exporter.half_open_pairs());

  // 3. The monitor tracks top-k distinct half-open sources per destination
  //    and compares against learned baselines.
  DdosMonitorConfig config;
  config.sketch.seed = 7;
  config.check_interval = 2048;
  config.min_absolute = 1000;
  DdosMonitor monitor(config);

  // Optional telemetry: refresh the metrics snapshot at every check epoch.
  const std::string metrics_out = options.str("metrics-out", "");
  const obs::ExportFormat metrics_format =
      obs::parse_format(options.str("metrics-format", "prom"));
  if (!metrics_out.empty())
    monitor.set_check_callback([&](const DdosMonitor&) {
      obs::write_snapshot_file(metrics_out, metrics_format,
                               obs::Registry::global().snapshot());
    });

  monitor.ingest(updates);
  monitor.check_now();

  // 4. Report: every alert as a structured event record.
  for (const Alert& alert : monitor.alerts())
    std::printf("[alert] %s\n", format_alert(alert).c_str());

  const std::string alerts_out = options.str("alerts-out", "");
  if (!alerts_out.empty()) write_alerts_json(alerts_out, monitor.alerts());

  const auto active = monitor.active_alarms();
  std::printf("\nactive alarms: %zu\n", active.size());
  for (const Addr subject : active) {
    std::printf("  dest %08x %s\n", subject,
                subject == flood.victim ? "<- the flood victim" : "");
  }
  std::printf("monitor memory: %.1f KiB\n",
              static_cast<double>(monitor.memory_bytes()) / 1024.0);
  return active.size() == 1 && active[0] == flood.victim ? 0 : 1;
}
