// SYN-flood detection end to end: simulated ISP edge traffic -> NetFlow-style
// exporter -> DdosMonitor (Tracking Distinct-Count Sketch + baselines).
//
//   build/examples/syn_flood_monitor [--flood 20000] [--sessions 10000]
//
// The run prints every alert the monitor raises; the expected outcome is a
// single kRaised alert naming the flood victim once the attack window opens,
// followed by no false alarms on background destinations.
#include <cstdio>

#include "common/options.hpp"
#include "detection/ddos_monitor.hpp"
#include "net/exporter.hpp"
#include "net/scenarios.hpp"

int main(int argc, char** argv) {
  using namespace dcs;
  const Options options(argc, argv);

  // 1. Simulate an ISP edge: steady legitimate traffic, then a SYN flood
  //    from spoofed sources against one victim.
  Timeline timeline(2024);
  BackgroundTrafficConfig background;
  background.sessions =
      static_cast<std::uint64_t>(options.integer("sessions", 10'000));
  add_background_traffic(timeline, background);

  SynFloodConfig flood;
  flood.spoofed_sources =
      static_cast<std::uint64_t>(options.integer("flood", 20'000));
  flood.resend_factor = 2;  // SYN retransmissions: volume without new sources
  add_syn_flood(timeline, flood);

  // 2. The exporter turns TCP handshake state into (source, dest, ±1)
  //    flow updates: SYN opens a half-open entry (+1), the client's ACK
  //    completes it (-1).
  FlowUpdateExporter exporter;
  const auto updates = exporter.run(timeline.finalize());
  std::printf("simulated %zu flow updates, %zu pairs still half-open\n",
              updates.size(), exporter.half_open_pairs());

  // 3. The monitor tracks top-k distinct half-open sources per destination
  //    and compares against learned baselines.
  DdosMonitorConfig config;
  config.sketch.seed = 7;
  config.check_interval = 2048;
  config.min_absolute = 1000;
  DdosMonitor monitor(config);
  monitor.ingest(updates);
  monitor.check_now();

  // 4. Report.
  for (const Alert& alert : monitor.alerts()) {
    std::printf("[alert] %s dest=%08x estimated_half_open=%llu baseline=%.0f (at update %llu)\n",
                alert.kind == Alert::Kind::kRaised ? "RAISED " : "cleared",
                alert.subject,
                static_cast<unsigned long long>(alert.estimated_frequency),
                alert.baseline,
                static_cast<unsigned long long>(alert.stream_position));
  }

  const auto active = monitor.active_alarms();
  std::printf("\nactive alarms: %zu\n", active.size());
  for (const Addr subject : active) {
    std::printf("  dest %08x %s\n", subject,
                subject == flood.victim ? "<- the flood victim" : "");
  }
  std::printf("monitor memory: %.1f KiB\n",
              static_cast<double>(monitor.memory_bytes()) / 1024.0);
  return active.size() == 1 && active[0] == flood.victim ? 0 : 1;
}
