// The paper's robustness argument, live: a flash crowd twice the size of a
// simultaneous SYN flood. Deletion handling lets the sketch separate them —
// the victim alarms, the crowd does not — while an insert-only view of the
// same stream confuses the two.
//
//   build/examples/flash_crowd_vs_ddos
#include <cstdio>

#include "baselines/distinct_sampler.hpp"
#include "detection/ddos_monitor.hpp"
#include "net/exporter.hpp"
#include "net/scenarios.hpp"

int main() {
  using namespace dcs;

  Timeline timeline(99);
  BackgroundTrafficConfig background;
  background.sessions = 8000;
  add_background_traffic(timeline, background);

  SynFloodConfig flood;
  flood.victim = 0x0a0000fe;
  flood.spoofed_sources = 15'000;
  add_syn_flood(timeline, flood);

  FlashCrowdConfig crowd;
  crowd.target = 0x0a00cafe;
  crowd.clients = 30'000;  // twice the flood, but all handshakes complete
  add_flash_crowd(timeline, crowd);

  FlowUpdateExporter exporter;
  const auto updates = exporter.run(timeline.finalize());

  DdosMonitorConfig config;
  config.sketch.seed = 42;
  config.check_interval = 2048;
  config.min_absolute = 2000;
  DdosMonitor monitor(config);

  DistinctSampler insert_only(4096, 42);  // deletion-blind comparison
  for (const FlowUpdate& u : updates) {
    monitor.ingest(u);
    if (u.delta > 0) insert_only.update(u.dest, u.source, +1);
  }
  monitor.check_now();

  const auto tag = [&](Addr a) {
    return a == flood.victim   ? " <- SYN-flood victim"
           : a == crowd.target ? " <- flash-crowd destination"
                               : "";
  };

  std::printf("== deletion-aware (Tracking Distinct-Count Sketch) ==\n");
  for (const TopKEntry& e : monitor.tracker().top_k(3).entries)
    std::printf("  dest=%08x half-open-sources~%llu%s\n", e.group,
                static_cast<unsigned long long>(e.estimate), tag(e.group));
  std::printf("alerts raised for:\n");
  bool victim_alarmed = false, crowd_alarmed = false;
  for (const Alert& alert : monitor.alerts()) {
    if (alert.kind != Alert::Kind::kRaised) continue;
    std::printf("  dest=%08x%s\n", alert.subject, tag(alert.subject));
    victim_alarmed |= alert.subject == flood.victim;
    crowd_alarmed |= alert.subject == crowd.target;
  }

  std::printf("\n== insert-only view of the same stream ==\n");
  for (const TopKEntry& e : insert_only.top_k(3).entries)
    std::printf("  dest=%08x distinct-sources-ever~%llu%s\n", e.group,
                static_cast<unsigned long long>(e.estimate), tag(e.group));
  std::printf("  (the crowd outranks the victim: indistinguishable from an attack)\n");

  const bool correct = victim_alarmed && !crowd_alarmed;
  std::printf("\nresult: %s\n",
              correct ? "victim alarmed, flash crowd correctly ignored"
                      : "UNEXPECTED detection outcome");
  return correct ? 0 : 1;
}
