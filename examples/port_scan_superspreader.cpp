// Port-scan / superspreader detection (paper footnote 1): the same sketch
// with group/member roles swapped ranks *sources* by distinct destinations
// contacted, flagging scanners. Contrasted with the threshold-based
// superspreader filter of Venkataraman et al., which needs a user-chosen
// threshold k up front.
//
//   build/examples/port_scan_superspreader [--targets 20000]
#include <cstdio>

#include "baselines/superspreader.hpp"
#include "common/options.hpp"
#include "detection/ddos_monitor.hpp"
#include "net/exporter.hpp"
#include "net/scenarios.hpp"

int main(int argc, char** argv) {
  using namespace dcs;
  const Options options(argc, argv);

  Timeline timeline(5150);
  BackgroundTrafficConfig background;
  background.sessions = 8000;
  add_background_traffic(timeline, background);

  PortScanConfig scan;
  scan.targets = static_cast<std::uint64_t>(options.integer("targets", 20'000));
  add_port_scan(timeline, scan);

  FlowUpdateExporter exporter;
  const auto updates = exporter.run(timeline.finalize());

  // Rank by source: "which sources hold half-open state towards the most
  // distinct destinations?" — no threshold needed, the top-k answers it.
  DdosMonitorConfig config;
  config.rank_by = DdosMonitorConfig::RankBy::kSource;
  config.sketch.seed = 13;
  config.check_interval = 2048;
  config.min_absolute = 500;
  config.absolute_alarm = 2000;  // slow scans ramp; a hard ceiling catches them
  DdosMonitor monitor(config);

  // The threshold-based baseline needs k chosen in advance.
  SuperspreaderFilter filter(/*threshold=*/1000, /*rate=*/8, /*seed=*/13);
  for (const FlowUpdate& u : updates) {
    monitor.ingest(u);
    if (u.delta > 0) filter.add(u.source, u.dest);
  }
  monitor.check_now();

  std::printf("== top-k by distinct half-open destinations (no threshold) ==\n");
  for (const TopKEntry& e : monitor.tracker().top_k(3).entries)
    std::printf("  source=%08x distinct-dests~%llu%s\n", e.group,
                static_cast<unsigned long long>(e.estimate),
                e.group == scan.scanner ? " <- the scanner" : "");

  bool scanner_alarmed = false;
  for (const Alert& alert : monitor.alerts())
    scanner_alarmed |= alert.kind == Alert::Kind::kRaised &&
                       alert.subject == scan.scanner;
  std::printf("scanner alarmed: %s\n", scanner_alarmed ? "yes" : "no");

  std::printf("\n== threshold superspreader filter (k=1000) ==\n");
  for (const auto& spreader : filter.superspreaders())
    std::printf("  source=%08x distinct-dests~%llu%s\n", spreader.source,
                static_cast<unsigned long long>(spreader.estimated_destinations),
                spreader.source == scan.scanner ? " <- the scanner" : "");

  return scanner_alarmed ? 0 : 1;
}
