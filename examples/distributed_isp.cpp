// Distributed deployment: eight simulated edge routers each sketch their
// slice of the traffic; a central collector merges the (linear) sketches and
// queries the network-wide top-k. Demonstrates that the merged view equals a
// single monitor over the union stream, including a serialize/ship/merge
// round trip for one router.
//
//   build/examples/distributed_isp
#include <cstdio>
#include <sstream>

#include "distributed/sharded_monitor.hpp"
#include "net/exporter.hpp"
#include "net/scenarios.hpp"
#include "sketch/tracking_dcs.hpp"

int main() {
  using namespace dcs;

  // Traffic: background plus two concurrent floods at different victims.
  Timeline timeline(808);
  BackgroundTrafficConfig background;
  background.sessions = 10'000;
  add_background_traffic(timeline, background);
  SynFloodConfig flood_a;
  flood_a.victim = 0x0a0000fe;
  flood_a.spoofed_sources = 12'000;
  add_syn_flood(timeline, flood_a);
  SynFloodConfig flood_b;
  flood_b.victim = 0x0a0000aa;
  flood_b.spoofed_sources = 6000;
  flood_b.spoof_seed = 4242;
  add_syn_flood(timeline, flood_b);

  FlowUpdateExporter exporter;
  const auto updates = exporter.run(timeline.finalize());

  DcsParams params;
  params.seed = 1001;  // every router must share parameters AND seed

  constexpr std::size_t kRouters = 8;
  ShardedMonitor routers(params, kRouters);
  DistinctCountSketch reference(params);  // what one central box would build
  for (const FlowUpdate& u : updates) {
    routers.update(u.dest, u.source, u.delta);
    reference.update(u.dest, u.source, u.delta);
  }

  std::printf("%zu routers observed %zu updates; per-router sketch ~%.1f KiB\n",
              kRouters, updates.size(),
              static_cast<double>(routers.shard(0).memory_bytes()) / 1024.0);

  // Ship one router's sketch over the wire (serialize -> deserialize) to show
  // the collector path works across process boundaries.
  std::stringstream wire;
  {
    BinaryWriter writer(wire);
    routers.shard(0).serialize(writer);
  }
  BinaryReader reader(wire);
  const DistinctCountSketch shipped = DistinctCountSketch::deserialize(reader);
  std::printf("router 0 sketch shipped: %zu bytes on the wire, intact: %s\n",
              wire.str().size(),
              shipped == routers.shard(0) ? "yes" : "NO");

  // Collector: merge and query.
  const TrackingDcs collected = routers.collect_tracking();
  std::printf("\nnetwork-wide top-3 (merged at collector):\n");
  for (const TopKEntry& e : collected.top_k(3).entries) {
    const char* tag = e.group == flood_a.victim   ? " <- victim A"
                      : e.group == flood_b.victim ? " <- victim B"
                                                  : "";
    std::printf("  dest=%08x half-open-sources~%llu%s\n", e.group,
                static_cast<unsigned long long>(e.estimate), tag);
  }

  const bool merged_matches = routers.collect() == reference;
  std::printf("\nmerged sketch identical to single-monitor sketch: %s\n",
              merged_matches ? "yes" : "NO");
  return merged_matches ? 0 : 1;
}
